// Minimal shared-memory parallel runtime. The paper parallelizes the
// per-r-clique loops with OpenMP and argues (Section 4.4) for *dynamic*
// scheduling because the notification mechanism makes per-item work highly
// skewed. We reproduce those semantics on top of a persistent ThreadPool
// (thread_pool.h): the pool's workers are spawned once and reused across
// every sweep of every iteration, and the loop body is a template parameter,
// so per-item dispatch is a direct call — no std::function, no per-call
// thread spawn.
#ifndef NUCLEUS_COMMON_PARALLEL_H_
#define NUCLEUS_COMMON_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <type_traits>

#include "src/common/thread_pool.h"

namespace nucleus {

/// Scheduling policy for ParallelFor, mirroring OpenMP's static/dynamic.
enum class Schedule {
  kStatic,   // contiguous ranges, one per thread
  kDynamic,  // atomic chunk grabbing (default in all paper algorithms)
};

/// ParallelFor with the worker index exposed: runs body(worker, i) for i in
/// [0, n) under dynamic chunk-grabbing scheduling. The worker index is in
/// [0, min(threads, n)) and stable for the whole region, so the body can own
/// per-worker scratch (e.g. frontier append buffers) without locks. Inline
/// (worker 0 only) when threads <= 1 or inside another parallel region.
template <typename Body>
void ParallelForWorker(std::size_t n, int threads, Body&& body,
                       std::size_t chunk = 256) {
  if (n == 0) return;
  const std::size_t t =
      threads <= 1 ? 1 : std::min<std::size_t>(static_cast<std::size_t>(threads), n);
  if (t <= 1 || ThreadPool::InWorker()) {
    for (std::size_t i = 0; i < n; ++i) body(0, i);
    return;
  }
  using B = std::remove_reference_t<Body>;
  struct Ctx {
    std::atomic<std::size_t> next{0};
    std::size_t n;
    std::size_t chunk;
    B* body;
  } ctx;
  ctx.n = n;
  ctx.chunk = chunk == 0 ? 1 : chunk;
  ctx.body = &body;
  ThreadPool::Get().Dispatch(
      static_cast<int>(t),
      [](void* p, int worker) {
        auto* c = static_cast<Ctx*>(p);
        for (;;) {
          const std::size_t begin =
              c->next.fetch_add(c->chunk, std::memory_order_relaxed);
          if (begin >= c->n) return;
          const std::size_t end = std::min(begin + c->chunk, c->n);
          for (std::size_t i = begin; i < end; ++i) (*c->body)(worker, i);
        }
      },
      &ctx);
}

/// Runs body(i) for i in [0, n) on `threads` workers drawn from the
/// persistent pool (the caller participates as worker 0). If threads <= 1,
/// or when called from inside another parallel region, the loop runs
/// inline. `chunk` is the dynamic grab size; the dynamic schedule is
/// ParallelForWorker with the worker index dropped.
template <typename Body>
void ParallelFor(std::size_t n, int threads, Body&& body,
                 Schedule schedule = Schedule::kDynamic,
                 std::size_t chunk = 256) {
  if (n == 0) return;
  if (schedule == Schedule::kDynamic) {
    ParallelForWorker(n, threads,
                      [&body](int /*worker*/, std::size_t i) { body(i); },
                      chunk);
    return;
  }
  const std::size_t t =
      threads <= 1 ? 1 : std::min<std::size_t>(static_cast<std::size_t>(threads), n);
  if (t <= 1 || ThreadPool::InWorker()) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  using B = std::remove_reference_t<Body>;
  struct Ctx {
    std::size_t n;
    std::size_t per;
    B* body;
  } ctx{n, (n + t - 1) / t, &body};
  ThreadPool::Get().Dispatch(
      static_cast<int>(t),
      [](void* p, int worker) {
        auto* c = static_cast<Ctx*>(p);
        const std::size_t begin =
            std::min(static_cast<std::size_t>(worker) * c->per, c->n);
        const std::size_t end = std::min(begin + c->per, c->n);
        for (std::size_t i = begin; i < end; ++i) (*c->body)(i);
      },
      &ctx);
}

/// Runs body(thread_index, begin, end) over a blocked partition of [0, n)
/// into min(threads, n) contiguous blocks. Useful when the body wants
/// thread-local scratch state indexed by thread_index.
template <typename Body>
void ParallelBlocks(std::size_t n, int threads, Body&& body) {
  if (n == 0) return;
  const std::size_t t =
      threads <= 1 ? 1 : std::min<std::size_t>(static_cast<std::size_t>(threads), n);
  if (t <= 1 || ThreadPool::InWorker()) {
    body(0, std::size_t{0}, n);
    return;
  }
  using B = std::remove_reference_t<Body>;
  struct Ctx {
    std::size_t n;
    std::size_t per;
    B* body;
  } ctx{n, (n + t - 1) / t, &body};
  ThreadPool::Get().Dispatch(
      static_cast<int>(t),
      [](void* p, int worker) {
        auto* c = static_cast<Ctx*>(p);
        const std::size_t begin =
            std::min(static_cast<std::size_t>(worker) * c->per, c->n);
        const std::size_t end = std::min(begin + c->per, c->n);
        (*c->body)(worker, begin, end);
      },
      &ctx);
}

}  // namespace nucleus

#endif  // NUCLEUS_COMMON_PARALLEL_H_
