#include "src/common/h_index.h"

#include <algorithm>

namespace nucleus {

Degree HIndex(std::span<const Degree> values) {
  const std::size_t n = values.size();
  if (n == 0) return 0;
  // counts[v] = number of items equal to v, with values clamped to n since
  // the h-index can never exceed the number of items.
  std::vector<std::uint32_t> counts(n + 1, 0);
  for (Degree v : values) {
    ++counts[std::min<std::size_t>(v, n)];
  }
  std::size_t at_least = 0;
  for (std::size_t h = n; h > 0; --h) {
    at_least += counts[h];
    if (at_least >= h) return static_cast<Degree>(h);
  }
  return 0;
}

Degree HIndexBySorting(std::vector<Degree> values) {
  std::sort(values.begin(), values.end(), std::greater<Degree>());
  Degree h = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] >= i + 1) {
      h = static_cast<Degree>(i + 1);
    } else {
      break;
    }
  }
  return h;
}

bool HIndexAtLeast(std::span<const Degree> values, Degree h) {
  if (h == 0) return true;
  Degree seen = 0;
  for (Degree v : values) {
    if (v >= h) {
      if (++seen >= h) return true;
    }
  }
  return false;
}

}  // namespace nucleus
