// Monotone bucket priority queue backing the SEQUENTIAL strategy of the
// peel engine (Batagelj-Zaversnik style; peel/peel_engine.h). Supports
// ExtractMin and DecreaseKey in O(1) amortized; keys only ever decrease,
// and extracted keys are non-decreasing over the life of the peel, which
// is exactly the peeling invariant. The parallel strategy replaces this
// structure with an AtomicDegreeArray + frontier rounds
// (common/atomic_frontier.h).
#ifndef NUCLEUS_COMMON_BUCKET_QUEUE_H_
#define NUCLEUS_COMMON_BUCKET_QUEUE_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <vector>

#include "src/common/types.h"

namespace nucleus {

/// Bucket queue over item ids [0, n) with integer keys [0, max_key].
/// Implemented as the classic "sorted-by-key array + position index" layout
/// so that DecreaseKey is a swap. Memory: 3n + (max_key+2) words.
class BucketQueue {
 public:
  /// Builds the queue from initial keys. O(n + max_key).
  explicit BucketQueue(const std::vector<Degree>& keys) { Reset(keys); }

  BucketQueue() = default;

  /// Rebuilds from scratch.
  void Reset(const std::vector<Degree>& keys) {
    n_ = keys.size();
    key_.assign(keys.begin(), keys.end());
    Degree max_key = 0;
    for (Degree k : keys) max_key = std::max(max_key, k);
    // bucket_start_[k] = index in sorted_ of the first item with key >= k.
    bucket_start_.assign(max_key + 2, 0);
    for (Degree k : keys) ++bucket_start_[k + 1];
    for (std::size_t k = 1; k < bucket_start_.size(); ++k) {
      bucket_start_[k] += bucket_start_[k - 1];
    }
    sorted_.resize(n_);
    pos_.resize(n_);
    std::vector<std::size_t> cursor(bucket_start_.begin(),
                                    bucket_start_.end() - 1);
    for (std::size_t i = 0; i < n_; ++i) {
      const std::size_t p = cursor[key_[i]]++;
      sorted_[p] = static_cast<CliqueId>(i);
      pos_[i] = p;
    }
    head_ = 0;
  }

  /// True when all items have been extracted.
  bool Empty() const { return head_ >= n_; }

  /// Number of items not yet extracted.
  std::size_t Size() const { return n_ - head_; }

  /// Id of the item that ExtractMin would return next.
  CliqueId PeekMin() const {
    assert(!Empty());
    return sorted_[head_];
  }

  /// Key of the item that ExtractMin would return next.
  Degree PeekMinKey() const { return key_[PeekMin()]; }

  /// Extracts an item with the minimum key. Returns its id; its key at
  /// extraction time is available via Key().
  CliqueId ExtractMin() {
    assert(!Empty());
    const CliqueId item = sorted_[head_];
    ++head_;
    return item;
  }

  /// Current key of an item (valid also after extraction: frozen value).
  Degree Key(CliqueId item) const { return key_[item]; }

  /// True if the item has already been extracted.
  bool Extracted(CliqueId item) const { return pos_[item] < head_; }

  /// Decrements the key of a not-yet-extracted item by one, but never below
  /// `floor`. This is the peeling update ds(R') = max(ds(R') - 1, ds(R)).
  void DecrementKeyClamped(CliqueId item, Degree floor) {
    assert(!Extracted(item));
    const Degree k = key_[item];
    if (k <= floor) return;
    // Swap item with the first element of its bucket, then shrink bucket.
    const std::size_t first = std::max(bucket_start_[k], head_);
    const std::size_t p = pos_[item];
    const CliqueId other = sorted_[first];
    sorted_[p] = other;
    pos_[other] = p;
    sorted_[first] = item;
    pos_[item] = first;
    bucket_start_[k] = first + 1;
    key_[item] = k - 1;
  }

 private:
  std::size_t n_ = 0;
  std::size_t head_ = 0;
  std::vector<Degree> key_;
  std::vector<CliqueId> sorted_;      // items ordered by current key
  std::vector<std::size_t> pos_;      // item -> index in sorted_
  std::vector<std::size_t> bucket_start_;
};

}  // namespace nucleus

#endif  // NUCLEUS_COMMON_BUCKET_QUEUE_H_
