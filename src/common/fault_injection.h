// Scriptable fault points for resilience testing. Expensive state
// transitions (index builds, arena allocation, commit stages, IO) each
// declare a named point via NUCLEUS_FAULT_POINT("name"); a test arms the
// point (fire on the Nth hit, or probabilistically with a seeded rng) and
// the enclosing Status-returning function unwinds with kResourceExhausted
// exactly as a real allocation or IO failure would — which is how the
// fault battery proves every install path is all-or-nothing.
//
// Fault points compile to ((void)0) unless the build sets
// -DNUCLEUS_FAULT_INJECTION (CMake option NUCLEUS_FAULT_INJECTION=ON), so
// production builds carry zero overhead and zero registry traffic. The
// registry class itself is always compiled so tests link in any
// configuration and can skip themselves when injection is off.
#ifndef NUCLEUS_COMMON_FAULT_INJECTION_H_
#define NUCLEUS_COMMON_FAULT_INJECTION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace nucleus {

/// True when fault points are compiled in.
constexpr bool FaultInjectionEnabled() {
#ifdef NUCLEUS_FAULT_INJECTION
  return true;
#else
  return false;
#endif
}

/// Process-wide registry of fault points. Points self-register on first
/// execution (so RegisteredPoints() reflects every path a warm-up run
/// reached), and stay registered — armed or not — until process exit.
/// All methods are thread-safe; arming is test-only, so the lock on the
/// poll path is acceptable (points are compiled out of production builds).
class FaultRegistry {
 public:
  static FaultRegistry& Get();

  /// Executes the point: registers it if new, counts the hit, and returns
  /// non-OK (kResourceExhausted, message naming the point) when armed to
  /// fire on this hit.
  Status Poll(const char* point);

  /// Arms `point` to fire exactly once, on the nth hit from now
  /// (1 = next hit). Replaces any previous arming; registers the point
  /// if it has not executed yet.
  void ArmAfter(const std::string& point, std::uint64_t nth);

  /// Arms `point` to fire independently on each hit with `probability`,
  /// driven by a deterministic rng seeded with `seed`.
  void ArmProbabilistic(const std::string& point, double probability,
                        std::uint64_t seed);

  void Disarm(const std::string& point);
  /// Disarms every point; registrations and hit counts survive.
  void DisarmAll();

  /// Total executions of the point (armed or not); 0 if never executed.
  std::uint64_t HitCount(const std::string& point) const;
  /// Times the point actually fired (returned non-OK).
  std::uint64_t FiredCount(const std::string& point) const;
  void ResetCounts();

  /// Every point that has executed or been armed, sorted by name.
  std::vector<std::string> RegisteredPoints() const;

 private:
  FaultRegistry() = default;

  enum class Mode { kDisarmed, kAfter, kProbabilistic };

  struct Point {
    Mode mode = Mode::kDisarmed;
    std::uint64_t countdown = 0;  // kAfter: hits remaining before firing
    double probability = 0.0;     // kProbabilistic
    std::uint64_t rng_state = 0;  // kProbabilistic: splitmix64 state
    std::uint64_t hits = 0;
    std::uint64_t fired = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, Point> points_;
};

}  // namespace nucleus

// Declares a fault point inside a function returning Status (or a type
// implicitly constructible from Status, e.g. StatusOr<T>): when the armed
// registry fires, the function returns the injected failure right here.
#ifdef NUCLEUS_FAULT_INJECTION
#define NUCLEUS_FAULT_POINT(point)                              \
  do {                                                          \
    ::nucleus::Status nucleus_fault_point_status =              \
        ::nucleus::FaultRegistry::Get().Poll(point);            \
    if (!nucleus_fault_point_status.ok()) {                     \
      return nucleus_fault_point_status;                        \
    }                                                           \
  } while (0)
#else
#define NUCLEUS_FAULT_POINT(point) ((void)0)
#endif

#endif  // NUCLEUS_COMMON_FAULT_INJECTION_H_
