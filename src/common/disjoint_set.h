// Union-find with path halving and union by size; used by the hierarchy
// builder and connectivity checks.
#ifndef NUCLEUS_COMMON_DISJOINT_SET_H_
#define NUCLEUS_COMMON_DISJOINT_SET_H_

#include <cstddef>
#include <numeric>
#include <vector>

#include "src/common/types.h"

namespace nucleus {

/// Classic disjoint-set forest over ids [0, n).
class DisjointSet {
 public:
  explicit DisjointSet(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), CliqueId{0});
  }

  /// Finds the representative with path halving.
  CliqueId Find(CliqueId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Unions the sets of a and b; returns the new representative.
  CliqueId Union(CliqueId a, CliqueId b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return a;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return a;
  }

  /// True if a and b are in the same set.
  bool Same(CliqueId a, CliqueId b) { return Find(a) == Find(b); }

  /// Size of the set containing x.
  std::size_t SetSize(CliqueId x) { return size_[Find(x)]; }

  std::size_t size() const { return parent_.size(); }

 private:
  std::vector<CliqueId> parent_;
  std::vector<std::size_t> size_;
};

}  // namespace nucleus

#endif  // NUCLEUS_COMMON_DISJOINT_SET_H_
