// Core integer types and small helpers shared across the library.
#ifndef NUCLEUS_COMMON_TYPES_H_
#define NUCLEUS_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace nucleus {

/// Vertex identifier. Graphs are relabeled to a dense [0, n) range.
using VertexId = std::uint32_t;

/// Edge identifier into the canonical (u < v) edge array.
using EdgeId = std::uint32_t;

/// Triangle identifier into the canonical sorted-triple triangle array.
using TriangleId = std::uint32_t;

/// Generic r-clique identifier used by the (r,s)-generic engines. Depending
/// on r it aliases VertexId (r=1), EdgeId (r=2) or TriangleId (r=3).
using CliqueId = std::uint32_t;

/// Degree / S-degree / kappa values. 32 bits is ample: an S-degree is bounded
/// by the number of s-cliques containing one r-clique.
using Degree = std::uint32_t;

/// Counts of cliques can exceed 2^32 on large graphs (e.g. K4 counts).
using Count = std::uint64_t;

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();
inline constexpr TriangleId kInvalidTriangle =
    std::numeric_limits<TriangleId>::max();
inline constexpr CliqueId kInvalidClique =
    std::numeric_limits<CliqueId>::max();

}  // namespace nucleus

#endif  // NUCLEUS_COMMON_TYPES_H_
