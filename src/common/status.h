// Status / StatusOr<T> — the exception-free error channel of the session
// boundary (core/session.h). Library internals that detect malformed input
// report a Status instead of throwing; the legacy free-function facade
// converts failures back into exceptions for source compatibility.
#ifndef NUCLEUS_COMMON_STATUS_H_
#define NUCLEUS_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace nucleus {

/// Coarse error categories, deliberately small (absl-style naming).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     // malformed options / ids out of range
  kNotFound,            // missing file, absent edge/triangle
  kFailedPrecondition,  // call sequencing violated (e.g. double Commit)
  kOutOfRange,          // numeric limits exceeded
  kInternal,            // invariant violation inside the library
  kCancelled,           // caller fired the CancelToken
  kDeadlineExceeded,    // request deadline expired mid-computation
  kResourceExhausted,   // over budget / allocation or IO failure (injected
                        // faults report this code)
};

/// A success-or-error value: ok() or a (code, message) pair.
class Status {
 public:
  /// Default: OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
      case StatusCode::kNotFound: return "NOT_FOUND";
      case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
      case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
      case StatusCode::kInternal: return "INTERNAL";
      case StatusCode::kCancelled: return "CANCELLED";
      case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
      case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    }
    return "UNKNOWN";
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value of type T or the Status explaining why there is none. Accessing
/// the value of a failed StatusOr is a programming error (asserts in debug
/// builds; undefined otherwise), so callers must check ok() first.
template <typename T>
class StatusOr {
 public:
  /// Implicit from a value (success).
  StatusOr(T value) : value_(std::move(value)) {}
  /// Implicit from a non-OK Status (failure). Constructing from an OK
  /// status without a value is a bug and is coerced to kInternal.
  StatusOr(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  /// OK when a value is present.
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value
  std::optional<T> value_;
};

}  // namespace nucleus

#endif  // NUCLEUS_COMMON_STATUS_H_
