// Persistent worker-thread pool behind ParallelFor/ParallelBlocks. The
// local algorithms run dozens of parallel sweeps per decomposition; spawning
// std::threads per sweep (the old ParallelFor) costs a syscall storm and
// cold stacks every iteration. The pool spawns each worker once, parks it on
// a condition variable between parallel regions, and hands out *region*
// granularity jobs as a raw function pointer + context — the per-item loop
// stays in the caller's templated code (see parallel.h), so item dispatch
// costs no std::function indirection.
#ifndef NUCLEUS_COMMON_THREAD_POOL_H_
#define NUCLEUS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace nucleus {

class ThreadPool {
 public:
  /// The process-wide pool, created (empty) on first use. Workers are
  /// spawned lazily by Dispatch and live until process exit.
  static ThreadPool& Get();

  /// A private pool instance (tests exercise shutdown against one of
  /// these rather than tearing down the shared singleton).
  ThreadPool() = default;

  /// True when the calling thread is executing inside a parallel region —
  /// either as a pool worker or as the dispatching caller running its
  /// inline share. Used by ParallelFor to run nested parallel regions
  /// inline instead of deadlocking on the pool.
  static bool InWorker();

  /// Runs fn(ctx, w) for worker indices w = 1 .. workers-1 on pool threads
  /// while the caller runs fn(ctx, 0) inline; returns once all calls have
  /// finished. Grows the pool to workers-1 threads if needed (never
  /// shrinks). Concurrent Dispatch calls from distinct threads serialize.
  /// Must not be called from inside a pool job (callers check InWorker()).
  ///
  /// A Dispatch that arrives during or after Shutdown() is not enqueued:
  /// the region runs every worker index inline on the calling thread (the
  /// result is identical, just serial), so late work completes instead of
  /// deadlocking on workers that have already exited.
  void Dispatch(int workers, void (*fn)(void* ctx, int worker), void* ctx);

  /// Drains the in-flight region (if any), stops and joins all workers,
  /// and marks the pool shut down. Idempotent and thread-safe; the
  /// destructor calls it. After Shutdown, Dispatch degrades to inline
  /// execution (see above) and IsShutdown() reports true.
  void Shutdown();

  /// True once Shutdown() has run (or started on another thread).
  bool IsShutdown() const;

  /// Total worker threads spawned over the pool's lifetime. After warm-up
  /// this is stable: re-dispatching never creates threads (asserted by
  /// thread_pool_test).
  std::size_t ThreadsCreated() const;

  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  // Spawns workers until at least `count` exist. Caller holds mu_.
  void EnsureWorkersLocked(int count);
  void WorkerLoop(int index, std::uint64_t seen_epoch);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;

  // Serializes whole parallel regions so one job owns the pool at a time.
  std::mutex dispatch_mu_;

  // Current job, published under mu_. epoch_ bumps once per Dispatch;
  // workers with index < job_workers_ participate.
  std::uint64_t epoch_ = 0;
  void (*job_fn_)(void*, int) = nullptr;
  void* job_ctx_ = nullptr;
  int job_workers_ = 0;
  int pending_ = 0;
  bool stop_ = false;
};

/// Number of hardware threads, at least 1.
int HardwareThreads();

}  // namespace nucleus

#endif  // NUCLEUS_COMMON_THREAD_POOL_H_
