// h-index computation (Definition 5 of the paper): H(K) is the largest h
// such that at least h elements of K are >= h.
#ifndef NUCLEUS_COMMON_H_INDEX_H_
#define NUCLEUS_COMMON_H_INDEX_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/types.h"

namespace nucleus {

/// Computes H(values) in O(|values|) time and O(|values|) extra space using
/// the counting method from Section 4.4 of the paper (no sorting).
Degree HIndex(std::span<const Degree> values);

/// Reference implementation by sorting; O(n log n). Used for testing and the
/// `bench_hindex` ablation.
Degree HIndexBySorting(std::vector<Degree> values);

/// Returns true iff H(values) >= h, short-circuiting once h witnesses with
/// value >= h have been seen. This is the "preserve check" heuristic from
/// Section 4.4: during non-initial iterations we only need to know whether
/// the current tau can be kept.
bool HIndexAtLeast(std::span<const Degree> values, Degree h);

/// Reusable scratch for h-index computations in hot loops: callers append
/// into values() and call Compute(); internal buffers are recycled so the
/// steady state performs no allocation.
class HIndexScratch {
 public:
  /// Value buffer; clear and refill between computations.
  std::vector<Degree>& values() { return values_; }

  /// H(values()), O(|values|). Leaves values() untouched.
  Degree Compute() {
    const std::size_t n = values_.size();
    if (n == 0) return 0;
    if (counts_.size() < n + 1) counts_.resize(n + 1);
    std::fill(counts_.begin(), counts_.begin() + n + 1, 0);
    for (Degree v : values_) {
      ++counts_[v < n ? v : n];
    }
    std::size_t at_least = 0;
    for (std::size_t h = n; h > 0; --h) {
      at_least += counts_[h];
      if (at_least >= h) return static_cast<Degree>(h);
    }
    return 0;
  }

 private:
  std::vector<Degree> values_;
  std::vector<std::uint32_t> counts_;
};

/// Incremental h-index accumulator: feed values one at a time, query the
/// running h-index. Space O(cap) where cap is an upper bound on the answer
/// (e.g. the S-degree of the r-clique). Avoids materializing the value list,
/// which is how the SND/AND inner loops stream rho values.
class HIndexAccumulator {
 public:
  /// `cap` upper-bounds the final h-index (values above cap are clamped).
  explicit HIndexAccumulator(Degree cap) : counts_(cap + 1, 0), cap_(cap) {}

  /// Adds one value to the multiset.
  void Add(Degree value) {
    if (value > cap_) value = cap_;
    ++counts_[value];
    ++total_;
  }

  /// Returns H over everything added so far. O(cap) per call.
  Degree Value() const {
    // Classic suffix-count scan: h is the largest value with
    // |{x : x >= h}| >= h.
    std::size_t at_least = 0;
    for (Degree h = cap_; h > 0; --h) {
      at_least += counts_[h];
      if (at_least >= h) return h;
    }
    return 0;
  }

  /// Number of values added.
  std::size_t size() const { return total_; }

  /// Resets to empty, keeping capacity.
  void Reset() {
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
  }

 private:
  std::vector<std::uint32_t> counts_;
  Degree cap_;
  std::size_t total_ = 0;
};

}  // namespace nucleus

#endif  // NUCLEUS_COMMON_H_INDEX_H_
