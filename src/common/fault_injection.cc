#include "src/common/fault_injection.h"

namespace nucleus {

namespace {

// splitmix64: tiny, seedable, good enough for fire/don't-fire draws.
std::uint64_t NextRandom(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

FaultRegistry& FaultRegistry::Get() {
  static FaultRegistry* registry = new FaultRegistry();  // never destroyed
  return *registry;
}

Status FaultRegistry::Poll(const char* point) {
  std::lock_guard<std::mutex> lock(mu_);
  Point& p = points_[point];
  ++p.hits;
  switch (p.mode) {
    case Mode::kDisarmed:
      return Status::Ok();
    case Mode::kAfter:
      if (--p.countdown > 0) return Status::Ok();
      p.mode = Mode::kDisarmed;  // fires exactly once
      break;
    case Mode::kProbabilistic: {
      // Draw in [0, 1) from the top 53 bits.
      const double draw =
          static_cast<double>(NextRandom(&p.rng_state) >> 11) * 0x1.0p-53;
      if (draw >= p.probability) return Status::Ok();
      break;
    }
  }
  ++p.fired;
  return Status::ResourceExhausted(std::string("injected fault at ") + point);
}

void FaultRegistry::ArmAfter(const std::string& point, std::uint64_t nth) {
  std::lock_guard<std::mutex> lock(mu_);
  Point& p = points_[point];
  p.mode = Mode::kAfter;
  p.countdown = nth == 0 ? 1 : nth;
}

void FaultRegistry::ArmProbabilistic(const std::string& point,
                                     double probability,
                                     std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  Point& p = points_[point];
  p.mode = Mode::kProbabilistic;
  p.probability = probability;
  p.rng_state = seed;
}

void FaultRegistry::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it != points_.end()) it->second.mode = Mode::kDisarmed;
}

void FaultRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, p] : points_) p.mode = Mode::kDisarmed;
}

std::uint64_t FaultRegistry::HitCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

std::uint64_t FaultRegistry::FiredCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fired;
}

void FaultRegistry::ResetCounts() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, p] : points_) {
    p.hits = 0;
    p.fired = 0;
  }
}

std::vector<std::string> FaultRegistry::RegisteredPoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, p] : points_) names.push_back(name);
  return names;
}

}  // namespace nucleus
