#include "src/common/rng.h"

#include <numeric>

namespace nucleus {

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  // Floyd's algorithm would be O(k), but k ~ n in our benches; partial
  // Fisher-Yates over an index vector is simple and O(n).
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  if (k > n) k = n;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + UniformInt(0, n - 1 - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace nucleus
