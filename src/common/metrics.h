// Process-wide metrics registry: named monotone counters and latency
// histograms, looked up once (pointer-stable) and then bumped lock-free on
// hot paths. The server registers one histogram per endpoint and counters
// for admission-control events (shed, expired, coalesced); /metricz walks
// the registry and exports every instrument as JSON. Registration takes a
// mutex; Record/Add on the returned references never do.
#ifndef NUCLEUS_COMMON_METRICS_H_
#define NUCLEUS_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/histogram.h"

namespace nucleus {

/// A monotone event counter.
class MetricCounter {
 public:
  void Add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class MetricsRegistry {
 public:
  /// The named counter, created on first use. The reference is stable for
  /// the registry's lifetime — resolve once, bump forever.
  MetricCounter& Counter(const std::string& name) {
    std::lock_guard<std::mutex> lk(mu_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<MetricCounter>();
    return *slot;
  }

  /// The named latency histogram, created on first use; same stability.
  LatencyHistogram& Histogram(const std::string& name) {
    std::lock_guard<std::mutex> lk(mu_);
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<LatencyHistogram>();
    return *slot;
  }

  /// Name-sorted snapshots of everything registered so far.
  std::vector<std::pair<std::string, std::uint64_t>> CounterValues() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto& [name, c] : counters_) out.emplace_back(name, c->Value());
    return out;
  }
  std::vector<std::pair<std::string, HistogramSnapshot>> HistogramValues()
      const {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<std::pair<std::string, HistogramSnapshot>> out;
    out.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
      out.emplace_back(name, h->Snapshot());
    }
    return out;
  }

 private:
  mutable std::mutex mu_;
  // unique_ptr pins each instrument: the map may rehash/rebalance under
  // registration while hot paths hold references into it.
  std::map<std::string, std::unique_ptr<MetricCounter>> counters_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace nucleus

#endif  // NUCLEUS_COMMON_METRICS_H_
