#include "src/common/thread_pool.h"

namespace nucleus {

namespace {
thread_local bool tls_in_worker = false;
}  // namespace

int HardwareThreads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

ThreadPool& ThreadPool::Get() {
  static ThreadPool pool;
  return pool;
}

bool ThreadPool::InWorker() { return tls_in_worker; }

void ThreadPool::EnsureWorkersLocked(int count) {
  while (static_cast<int>(threads_.size()) < count) {
    const int index = static_cast<int>(threads_.size()) + 1;
    // A worker spawned mid-dispatch must still see the job published in the
    // same critical section, so it starts with the pre-bump epoch.
    threads_.emplace_back(&ThreadPool::WorkerLoop, this, index, epoch_);
  }
}

void ThreadPool::WorkerLoop(int index, std::uint64_t seen_epoch) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
    // A job published before the stop flag must still be drained — the
    // dispatching thread is blocked until pending_ reaches zero, so
    // exiting on stop_ with a job outstanding would deadlock it.
    if (epoch_ != seen_epoch) {
      seen_epoch = epoch_;
      if (index < job_workers_) {
        auto* fn = job_fn_;
        void* ctx = job_ctx_;
        lock.unlock();
        tls_in_worker = true;
        fn(ctx, index);
        tls_in_worker = false;
        lock.lock();
        if (--pending_ == 0) done_cv_.notify_one();
      }
      continue;
    }
    if (stop_) return;
  }
}

void ThreadPool::Dispatch(int workers, void (*fn)(void*, int), void* ctx) {
  if (workers <= 1) {
    fn(ctx, 0);
    return;
  }
  std::lock_guard<std::mutex> region(dispatch_mu_);
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) {
      // Shut down: the workers have exited (or never existed), so
      // publishing a job would hang forever. Run the whole region inline
      // on this thread instead — serial, but complete and deadlock-free.
      lock.unlock();
      tls_in_worker = true;
      for (int w = 0; w < workers; ++w) fn(ctx, w);
      tls_in_worker = false;
      return;
    }
    EnsureWorkersLocked(workers - 1);
    job_fn_ = fn;
    job_ctx_ = ctx;
    job_workers_ = workers;
    pending_ = workers - 1;
    ++epoch_;
  }
  work_cv_.notify_all();
  // The guard runs even if fn throws on this thread: Dispatch must never
  // return (unwinding the caller's job context that workers still
  // dereference) before every worker has finished, and the in-worker flag
  // must not stay stuck.
  struct RegionGuard {
    ThreadPool* pool;
    ~RegionGuard() {
      tls_in_worker = false;
      std::unique_lock<std::mutex> lock(pool->mu_);
      pool->done_cv_.wait(lock, [&] { return pool->pending_ == 0; });
    }
  } guard{this};
  // The caller's inline share counts as being inside a parallel region:
  // a nested ParallelFor from this body must run inline (see parallel.h),
  // not re-enter Dispatch and relock dispatch_mu_ on the same thread.
  tls_in_worker = true;
  fn(ctx, 0);
}

std::size_t ThreadPool::ThreadsCreated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return threads_.size();
}

void ThreadPool::Shutdown() {
  // Serializing on dispatch_mu_ lets any in-flight region finish cleanly
  // before the stop flag goes up; Dispatch calls that arrive later see
  // stop_ and run inline.
  std::lock_guard<std::mutex> region(dispatch_mu_);
  std::vector<std::thread> joined;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    joined.swap(threads_);
  }
  work_cv_.notify_all();
  for (auto& t : joined) t.join();
}

bool ThreadPool::IsShutdown() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stop_;
}

ThreadPool::~ThreadPool() { Shutdown(); }

}  // namespace nucleus
