#include "src/common/parallel.h"

#include <algorithm>

namespace nucleus {

int HardwareThreads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

void ParallelFor(std::size_t n, int threads,
                 const std::function<void(std::size_t)>& body,
                 Schedule schedule, std::size_t chunk) {
  if (n == 0) return;
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  const std::size_t t = std::min<std::size_t>(threads, n);
  if (schedule == Schedule::kDynamic) {
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      for (;;) {
        const std::size_t begin = next.fetch_add(chunk);
        if (begin >= n) return;
        const std::size_t end = std::min(begin + chunk, n);
        for (std::size_t i = begin; i < end; ++i) body(i);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(t - 1);
    for (std::size_t k = 1; k < t; ++k) pool.emplace_back(worker);
    worker();
    for (auto& th : pool) th.join();
  } else {
    auto worker = [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) body(i);
    };
    std::vector<std::thread> pool;
    pool.reserve(t - 1);
    const std::size_t per = (n + t - 1) / t;
    for (std::size_t k = 1; k < t; ++k) {
      const std::size_t begin = std::min(k * per, n);
      const std::size_t end = std::min(begin + per, n);
      pool.emplace_back(worker, begin, end);
    }
    worker(0, std::min(per, n));
    for (auto& th : pool) th.join();
  }
}

void ParallelBlocks(
    std::size_t n, int threads,
    const std::function<void(int, std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (threads <= 1) {
    body(0, 0, n);
    return;
  }
  const std::size_t t = std::min<std::size_t>(threads, n);
  const std::size_t per = (n + t - 1) / t;
  std::vector<std::thread> pool;
  pool.reserve(t - 1);
  for (std::size_t k = 1; k < t; ++k) {
    const std::size_t begin = std::min(k * per, n);
    const std::size_t end = std::min(begin + per, n);
    pool.emplace_back(body, static_cast<int>(k), begin, end);
  }
  body(0, 0, std::min(per, n));
  for (auto& th : pool) th.join();
}

}  // namespace nucleus
