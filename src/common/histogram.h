// Lock-free latency histogram with logarithmic buckets. The server records
// one sample per request on the hot path, so Record() must be a couple of
// atomic increments — no mutex, no allocation. Buckets are powers of two of
// microseconds (bucket b covers [2^b, 2^(b+1)) us), which spans 1 us to
// ~4.5 hours in 32 buckets with the <= 2x relative error that is standard
// for latency telemetry. Snapshots are taken with relaxed loads: the result
// is a consistent-enough view for /metricz (individual counters are exact,
// cross-counter skew is bounded by the in-flight requests).
#ifndef NUCLEUS_COMMON_HISTOGRAM_H_
#define NUCLEUS_COMMON_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace nucleus {

/// Point-in-time copy of a LatencyHistogram, plus derived quantiles.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum_ms = 0.0;
  double max_ms = 0.0;
  /// counts[b] = samples in [2^b, 2^(b+1)) microseconds.
  std::vector<std::uint64_t> counts;

  double MeanMs() const { return count == 0 ? 0.0 : sum_ms / count; }
  /// Quantile estimate (q in [0, 1]) from the bucket boundaries: the upper
  /// edge of the bucket containing the q-th sample, in milliseconds —
  /// an over-estimate by at most 2x, monotone in q.
  double QuantileMs(double q) const;
};

class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void Record(double ms) {
    const double us = ms * 1e3;
    std::size_t b = 0;
    // Bucket index = floor(log2(us)) clamped to [0, kBuckets); < 1 us
    // lands in bucket 0.
    for (std::uint64_t v = static_cast<std::uint64_t>(us); v > 1 && b + 1 < kBuckets; v >>= 1) ++b;
    counts_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // sum/max as integer nanoseconds so they stay atomics (no double CAS
    // loops on the hot path; ~292 years of total latency before overflow).
    const std::uint64_t ns = static_cast<std::uint64_t>(ms * 1e6);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
    std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
    while (ns > seen &&
           !max_ns_.compare_exchange_weak(seen, ns,
                                          std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot s;
    s.counts.resize(kBuckets);
    for (std::size_t b = 0; b < kBuckets; ++b) {
      s.counts[b] = counts_[b].load(std::memory_order_relaxed);
    }
    s.count = count_.load(std::memory_order_relaxed);
    s.sum_ms = static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) / 1e6;
    s.max_ms = static_cast<double>(max_ns_.load(std::memory_order_relaxed)) / 1e6;
    return s;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

inline double HistogramSnapshot::QuantileMs(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample (1-based, ceil), found by scanning buckets.
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    seen += counts[b];
    if (seen >= rank) {
      // Upper edge of bucket b: 2^(b+1) us.
      return static_cast<double>(std::uint64_t{1} << (b + 1)) / 1e3;
    }
  }
  return max_ms;
}

}  // namespace nucleus

#endif  // NUCLEUS_COMMON_HISTOGRAM_H_
