// Deterministic random number generation helpers. All generators and
// randomized benches take explicit seeds so every experiment is exactly
// reproducible.
#ifndef NUCLEUS_COMMON_RNG_H_
#define NUCLEUS_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace nucleus {

/// Thin wrapper over a 64-bit Mersenne Twister with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t UniformInt(std::uint64_t lo, std::uint64_t hi) {
    std::uniform_int_distribution<std::uint64_t> d(lo, hi);
    return d(engine_);
  }

  /// Uniform double in [0, 1).
  double UniformReal() {
    std::uniform_real_distribution<double> d(0.0, 1.0);
    return d(engine_);
  }

  /// Bernoulli draw.
  bool Flip(double p) { return UniformReal() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = UniformInt(0, i - 1);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n) (k <= n).
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace nucleus

#endif  // NUCLEUS_COMMON_RNG_H_
