// Wall-clock timer for benches and examples.
#ifndef NUCLEUS_COMMON_TIMER_H_
#define NUCLEUS_COMMON_TIMER_H_

#include <chrono>

namespace nucleus {

/// Simple monotonic stopwatch.
class Timer {
 public:
  Timer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace nucleus

#endif  // NUCLEUS_COMMON_TIMER_H_
