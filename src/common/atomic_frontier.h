// Shared-memory primitives for level-synchronous (frontier) peeling:
// an atomically decrementable degree array with the peeling clamp, and a
// per-worker frontier buffer set that collects the items claimed during a
// parallel round without locks. Used by the parallel strategy of the peel
// engine (peel/peel_engine.h); kept in common because the structures are
// algorithm-agnostic (any "process the minimum level in bulk" sweep can
// reuse them).
#ifndef NUCLEUS_COMMON_ATOMIC_FRONTIER_H_
#define NUCLEUS_COMMON_ATOMIC_FRONTIER_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "src/common/types.h"

namespace nucleus {

/// Fixed-size array of atomic degrees. Loads/stores are relaxed: the peel
/// phases are separated by the thread pool's dispatch barrier, which
/// provides the necessary happens-before edges between rounds; within a
/// round only the clamped decrement races, and it is a read-modify-write.
class AtomicDegreeArray {
 public:
  explicit AtomicDegreeArray(const std::vector<Degree>& init)
      : n_(init.size()), deg_(new std::atomic<Degree>[init.size()]) {
    for (std::size_t i = 0; i < n_; ++i) {
      deg_[i].store(init[i], std::memory_order_relaxed);
    }
  }

  std::size_t size() const { return n_; }

  Degree Load(std::size_t i) const {
    return deg_[i].load(std::memory_order_relaxed);
  }

  void Store(std::size_t i, Degree v) {
    deg_[i].store(v, std::memory_order_relaxed);
  }

  /// The peeling update ds(R') = max(ds(R') - 1, floor), atomically.
  /// Returns true exactly when this call moved the degree from floor + 1
  /// down to floor — i.e. the caller is the unique decrementer that made
  /// item i removable at the current level and must claim it for the next
  /// frontier round. Degrees at or below the floor are left untouched.
  bool DecrementClamped(std::size_t i, Degree floor) {
    Degree cur = deg_[i].load(std::memory_order_relaxed);
    while (cur > floor) {
      if (deg_[i].compare_exchange_weak(cur, cur - 1,
                                        std::memory_order_relaxed)) {
        return cur - 1 == floor;
      }
    }
    return false;
  }

 private:
  std::size_t n_;
  std::unique_ptr<std::atomic<Degree>[]> deg_;
};

/// Per-worker append buffers for collecting a frontier during a parallel
/// round (each worker owns buffer[worker]; no synchronization needed), and
/// a drain that concatenates them into a single round vector.
class FrontierBuffers {
 public:
  explicit FrontierBuffers(int workers)
      : buffers_(static_cast<std::size_t>(workers < 1 ? 1 : workers)) {}

  void Push(int worker, CliqueId item) {
    buffers_[static_cast<std::size_t>(worker)].push_back(item);
  }

  /// Moves every buffered item into *out (appending) and clears the
  /// buffers for the next round. Call between rounds only (single thread).
  void Drain(std::vector<CliqueId>* out) {
    for (auto& b : buffers_) {
      out->insert(out->end(), b.begin(), b.end());
      b.clear();
    }
  }

  bool Empty() const {
    for (const auto& b : buffers_) {
      if (!b.empty()) return false;
    }
    return true;
  }

 private:
  std::vector<std::vector<CliqueId>> buffers_;
};

}  // namespace nucleus

#endif  // NUCLEUS_COMMON_ATOMIC_FRONTIER_H_
