// Builds Graph objects from arbitrary edge lists: deduplicates, drops self
// loops, optionally compacts vertex ids.
#ifndef NUCLEUS_GRAPH_BUILDER_H_
#define NUCLEUS_GRAPH_BUILDER_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/graph/graph.h"

namespace nucleus {

/// An unordered edge as read from input; may contain duplicates, loops, and
/// both orientations.
using RawEdge = std::pair<std::uint64_t, std::uint64_t>;

/// Accumulates edges and produces a canonical Graph.
class GraphBuilder {
 public:
  /// If relabel is true, input vertex ids are mapped to a dense [0, n)
  /// range in first-appearance order; otherwise ids must already be dense
  /// (n becomes max_id + 1, including isolated vertices below it).
  explicit GraphBuilder(bool relabel = true) : relabel_(relabel) {}

  /// Adds one undirected edge. Self loops are silently dropped.
  void AddEdge(std::uint64_t u, std::uint64_t v);

  /// Adds many edges.
  void AddEdges(const std::vector<RawEdge>& edges);

  /// Ensures a vertex exists even if isolated.
  void AddVertex(std::uint64_t v);

  /// Number of edges added so far (before dedup).
  std::size_t PendingEdges() const { return edges_.size(); }

  /// Builds the graph, consuming the accumulated edges.
  Graph Build();

  /// When relabeling: original id of each dense vertex. Valid after Build().
  const std::vector<std::uint64_t>& OriginalIds() const {
    return original_ids_;
  }

 private:
  VertexId DenseId(std::uint64_t raw);

  bool relabel_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
  std::vector<std::uint64_t> original_ids_;
  std::unordered_map<std::uint64_t, VertexId> dense_of_raw_;
  std::uint64_t max_raw_id_ = 0;
  bool saw_vertex_ = false;
};

/// Convenience: builds a graph directly from a list of (u, v) pairs with
/// dense ids already (no relabeling). num_vertices must exceed every id.
Graph BuildGraphFromEdges(
    std::size_t num_vertices,
    const std::vector<std::pair<VertexId, VertexId>>& edges);

}  // namespace nucleus

#endif  // NUCLEUS_GRAPH_BUILDER_H_
