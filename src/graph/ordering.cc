#include "src/graph/ordering.h"

#include <algorithm>
#include <numeric>

#include "src/common/bucket_queue.h"

namespace nucleus {

std::vector<VertexId> DegreeOrderRanks(const Graph& g) {
  const std::size_t n = g.NumVertices();
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    const Degree da = g.GetDegree(a), db = g.GetDegree(b);
    return da != db ? da < db : a < b;
  });
  std::vector<VertexId> rank(n);
  for (std::size_t i = 0; i < n; ++i) rank[order[i]] = static_cast<VertexId>(i);
  return rank;
}

std::vector<VertexId> DegeneracyOrderRanks(const Graph& g,
                                           Degree* out_degeneracy) {
  const std::size_t n = g.NumVertices();
  std::vector<Degree> deg(n);
  for (VertexId v = 0; v < n; ++v) deg[v] = g.GetDegree(v);
  BucketQueue queue(deg);
  std::vector<VertexId> rank(n);
  Degree degeneracy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const VertexId v = queue.ExtractMin();
    degeneracy = std::max(degeneracy, queue.Key(v));
    rank[v] = static_cast<VertexId>(i);
    for (VertexId w : g.Neighbors(v)) {
      if (!queue.Extracted(w)) queue.DecrementKeyClamped(w, 0);
    }
  }
  if (out_degeneracy != nullptr) *out_degeneracy = degeneracy;
  return rank;
}

OrientedGraph::OrientedGraph(const Graph& g,
                             const std::vector<VertexId>& ranks) {
  const std::size_t n = g.NumVertices();
  offsets_.assign(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId w : g.Neighbors(v)) {
      if (ranks[v] < ranks[w]) ++offsets_[v + 1];
    }
  }
  for (std::size_t i = 1; i <= n; ++i) offsets_[i] += offsets_[i - 1];
  out_.resize(offsets_[n]);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId w : g.Neighbors(v)) {
      if (ranks[v] < ranks[w]) out_[cursor[v]++] = w;
    }
  }
  // Neighbors(v) is sorted by id, so each out list is already id-sorted.
}

}  // namespace nucleus
