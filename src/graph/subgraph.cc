#include "src/graph/subgraph.h"

#include <algorithm>
#include <queue>

#include "src/graph/builder.h"

namespace nucleus {

InducedSubgraph BuildInducedSubgraph(const Graph& g,
                                     std::span<const VertexId> vertices) {
  InducedSubgraph out;
  out.mapping.assign(vertices.begin(), vertices.end());
  std::sort(out.mapping.begin(), out.mapping.end());
  out.mapping.erase(std::unique(out.mapping.begin(), out.mapping.end()),
                    out.mapping.end());
  std::vector<VertexId> new_id(g.NumVertices(), kInvalidVertex);
  for (std::size_t i = 0; i < out.mapping.size(); ++i) {
    new_id[out.mapping[i]] = static_cast<VertexId>(i);
  }
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId old_u : out.mapping) {
    for (VertexId old_v : g.Neighbors(old_u)) {
      if (old_v > old_u && new_id[old_v] != kInvalidVertex) {
        edges.emplace_back(new_id[old_u], new_id[old_v]);
      }
    }
  }
  out.graph = BuildGraphFromEdges(out.mapping.size(), edges);
  return out;
}

std::vector<VertexId> ConnectedComponents(const Graph& g,
                                          std::size_t* num_components) {
  const std::size_t n = g.NumVertices();
  std::vector<VertexId> comp(n, kInvalidVertex);
  VertexId next = 0;
  std::queue<VertexId> q;
  for (VertexId s = 0; s < n; ++s) {
    if (comp[s] != kInvalidVertex) continue;
    comp[s] = next;
    q.push(s);
    while (!q.empty()) {
      const VertexId v = q.front();
      q.pop();
      for (VertexId u : g.Neighbors(v)) {
        if (comp[u] == kInvalidVertex) {
          comp[u] = next;
          q.push(u);
        }
      }
    }
    ++next;
  }
  if (num_components != nullptr) *num_components = next;
  return comp;
}

std::vector<std::uint32_t> BfsDistances(const Graph& g,
                                        std::span<const VertexId> sources) {
  std::vector<std::uint32_t> dist(g.NumVertices(), kUnreachable);
  std::queue<VertexId> q;
  for (VertexId s : sources) {
    if (dist[s] != kUnreachable) continue;
    dist[s] = 0;
    q.push(s);
  }
  while (!q.empty()) {
    const VertexId v = q.front();
    q.pop();
    for (VertexId u : g.Neighbors(v)) {
      if (dist[u] == kUnreachable) {
        dist[u] = dist[v] + 1;
        q.push(u);
      }
    }
  }
  return dist;
}

std::uint32_t DoubleSweepDiameter(const Graph& g) {
  if (g.NumVertices() == 0) return 0;
  auto farthest = [&](VertexId s) {
    const VertexId src[1] = {s};
    const auto dist = BfsDistances(g, src);
    VertexId best = s;
    std::uint32_t best_d = 0;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      if (dist[v] != kUnreachable && dist[v] > best_d) {
        best = v;
        best_d = dist[v];
      }
    }
    return std::pair{best, best_d};
  };
  const auto [far1, d1] = farthest(0);
  const auto [far2, d2] = farthest(far1);
  (void)far2;
  return std::max(d1, d2);
}

}  // namespace nucleus
