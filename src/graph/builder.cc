#include "src/graph/builder.h"

#include <algorithm>
#include <cassert>

namespace nucleus {

VertexId GraphBuilder::DenseId(std::uint64_t raw) {
  auto [it, inserted] =
      dense_of_raw_.try_emplace(raw, static_cast<VertexId>(original_ids_.size()));
  if (inserted) original_ids_.push_back(raw);
  return it->second;
}

void GraphBuilder::AddVertex(std::uint64_t v) {
  saw_vertex_ = true;
  if (relabel_) {
    DenseId(v);
  } else {
    max_raw_id_ = std::max(max_raw_id_, v);
  }
}

void GraphBuilder::AddEdge(std::uint64_t u, std::uint64_t v) {
  if (u == v) return;  // drop self loops
  saw_vertex_ = true;
  VertexId du, dv;
  if (relabel_) {
    du = DenseId(u);
    dv = DenseId(v);
  } else {
    max_raw_id_ = std::max({max_raw_id_, u, v});
    du = static_cast<VertexId>(u);
    dv = static_cast<VertexId>(v);
  }
  if (du > dv) std::swap(du, dv);
  edges_.emplace_back(du, dv);
}

void GraphBuilder::AddEdges(const std::vector<RawEdge>& edges) {
  for (const auto& [u, v] : edges) AddEdge(u, v);
}

Graph GraphBuilder::Build() {
  const std::size_t n =
      relabel_ ? original_ids_.size()
               : (saw_vertex_ ? static_cast<std::size_t>(max_raw_id_) + 1 : 0);
  // Canonicalize: sort and dedup the (u < v) pairs.
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  std::vector<std::size_t> offsets(n + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++offsets[u + 1];
    ++offsets[v + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) offsets[i] += offsets[i - 1];
  std::vector<VertexId> neighbors(offsets[n]);
  std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [u, v] : edges_) {
    neighbors[cursor[u]++] = v;
    neighbors[cursor[v]++] = u;
  }
  // Each adjacency list must be sorted; edges_ was sorted by (u, v) so the
  // u -> v entries are in order, but the v -> u side is not. Sort per list.
  for (std::size_t v = 0; v < n; ++v) {
    std::sort(neighbors.begin() + offsets[v], neighbors.begin() + offsets[v + 1]);
  }
  edges_.clear();
  return Graph(std::move(offsets), std::move(neighbors));
}

Graph BuildGraphFromEdges(
    std::size_t num_vertices,
    const std::vector<std::pair<VertexId, VertexId>>& edges) {
  GraphBuilder b(/*relabel=*/false);
  if (num_vertices > 0) b.AddVertex(num_vertices - 1);
  for (const auto& [u, v] : edges) b.AddEdge(u, v);
  return b.Build();
}

}  // namespace nucleus
