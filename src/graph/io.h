// Edge-list I/O. Text format is SNAP-compatible: one "u v" pair per line,
// '#' or '%' comment lines ignored. Binary format is a compact CSR dump.
#ifndef NUCLEUS_GRAPH_IO_H_
#define NUCLEUS_GRAPH_IO_H_

#include <string>

#include "src/graph/graph.h"

namespace nucleus {

/// Loads a SNAP-style text edge list. Vertex ids are relabeled densely.
/// Throws std::runtime_error on unreadable files or malformed lines.
Graph LoadEdgeListText(const std::string& path);

/// Writes "u v" lines (canonical u < v orientation), with a header comment.
void SaveEdgeListText(const Graph& g, const std::string& path);

/// Binary CSR round-trip: magic + n + offsets + neighbors, little endian.
void SaveBinary(const Graph& g, const std::string& path);
Graph LoadBinary(const std::string& path);

}  // namespace nucleus

#endif  // NUCLEUS_GRAPH_IO_H_
