// Edge-list I/O. Text format is SNAP-compatible: one "u v" pair per line,
// '#' or '%' comment lines ignored. Binary format is a compact CSR dump.
//
// Each loader/saver comes in two flavors: the Try* functions report
// failures through the Status channel (what the session-centric API and
// the CLI consume), while the legacy names keep throwing
// std::runtime_error for existing callers.
#ifndef NUCLEUS_GRAPH_IO_H_
#define NUCLEUS_GRAPH_IO_H_

#include <string>

#include "src/common/status.h"
#include "src/graph/graph.h"

namespace nucleus {

/// Loads a SNAP-style text edge list. Vertex ids are relabeled densely.
/// kNotFound for unreadable files; kInvalidArgument (with a "path:lineno"
/// location) for malformed lines: non-numeric tokens, ids >= 2^31 (they
/// would not survive the narrowing to the 32-bit VertexId), lines with a
/// missing second endpoint, or trailing garbage after the pair.
StatusOr<Graph> TryLoadEdgeListText(const std::string& path);

/// Writes "u v" lines (canonical u < v orientation), with a header comment.
/// kFailedPrecondition when the path cannot be opened for writing,
/// kInternal on a short write.
Status TrySaveEdgeListText(const Graph& g, const std::string& path);

/// Binary CSR round-trip: magic + n + offsets + neighbors, little endian.
Status TrySaveBinary(const Graph& g, const std::string& path);
StatusOr<Graph> TryLoadBinary(const std::string& path);

/// Format-sniffing loader — what the server's graph registry uses to ingest
/// datasets by path alone: reads the first 8 bytes and dispatches to
/// TryLoadBinary when they are the binary CSR magic, otherwise to the SNAP
/// text reader. A UTF-8 BOM at the start of a text file is tolerated (SNAP
/// mirrors re-encoded on Windows grow one); every other failure mode is the
/// dispatched loader's (kNotFound, precise path:lineno kInvalidArgument).
StatusOr<Graph> TryLoadGraphAuto(const std::string& path);

// Legacy throwing wrappers (std::runtime_error on any failure). Prefer the
// Try* forms above in new code.
Graph LoadEdgeListText(const std::string& path);
void SaveEdgeListText(const Graph& g, const std::string& path);
void SaveBinary(const Graph& g, const std::string& path);
Graph LoadBinary(const std::string& path);

}  // namespace nucleus

#endif  // NUCLEUS_GRAPH_IO_H_
