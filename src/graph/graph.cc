#include "src/graph/graph.h"

#include <algorithm>
#include <cassert>

namespace nucleus {

Graph::Graph(std::vector<std::size_t> offsets, std::vector<VertexId> neighbors)
    : num_vertices_(offsets.empty() ? 0 : offsets.size() - 1),
      offsets_(std::move(offsets)),
      neighbors_(std::move(neighbors)) {
  assert(!offsets_.empty());
  assert(offsets_.back() == neighbors_.size());
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  if (u >= num_vertices_ || v >= num_vertices_ || u == v) return false;
  if (GetDegree(u) > GetDegree(v)) std::swap(u, v);
  const auto nb = Neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

Degree Graph::MaxDegree() const {
  Degree best = 0;
  for (VertexId v = 0; v < num_vertices_; ++v) {
    best = std::max(best, GetDegree(v));
  }
  return best;
}

}  // namespace nucleus
