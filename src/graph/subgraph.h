// Subgraph and connectivity utilities used by the hierarchy consumers and
// examples: induced subgraphs, connected components, BFS distances.
#ifndef NUCLEUS_GRAPH_SUBGRAPH_H_
#define NUCLEUS_GRAPH_SUBGRAPH_H_

#include <span>
#include <vector>

#include "src/graph/graph.h"

namespace nucleus {

/// The subgraph induced by `vertices` (need not be sorted; duplicates
/// ignored). Vertex i of the result corresponds to mapping[i] in g.
struct InducedSubgraph {
  Graph graph;
  std::vector<VertexId> mapping;  // new id -> old id
};
InducedSubgraph BuildInducedSubgraph(const Graph& g,
                                     std::span<const VertexId> vertices);

/// Connected components; returns component id per vertex (dense, 0-based)
/// and the number of components via out param.
std::vector<VertexId> ConnectedComponents(const Graph& g,
                                          std::size_t* num_components);

/// BFS distances from a set of sources; unreachable = kUnreachable.
inline constexpr std::uint32_t kUnreachable = 0xffffffffu;
std::vector<std::uint32_t> BfsDistances(const Graph& g,
                                        std::span<const VertexId> sources);

/// Graph diameter lower bound via double-sweep BFS (exact on trees).
std::uint32_t DoubleSweepDiameter(const Graph& g);

}  // namespace nucleus

#endif  // NUCLEUS_GRAPH_SUBGRAPH_H_
