// Vertex orderings used to orient clique enumeration and to drive AND
// processing-order experiments.
#ifndef NUCLEUS_GRAPH_ORDERING_H_
#define NUCLEUS_GRAPH_ORDERING_H_

#include <vector>

#include "src/graph/graph.h"

namespace nucleus {

/// rank[v] = position of v in ascending-degree order (ties by id).
/// Enumerating each edge/triangle from its lowest-ranked vertex bounds work
/// by the degeneracy-like quantity sum of min-degrees.
std::vector<VertexId> DegreeOrderRanks(const Graph& g);

/// Smallest-last (degeneracy) ordering. Returns rank[v]; also reports the
/// graph degeneracy if out_degeneracy is non-null. Computed with the same
/// bucket structure as k-core peeling.
std::vector<VertexId> DegeneracyOrderRanks(const Graph& g,
                                           Degree* out_degeneracy);

/// Orientation view: out-neighbors of v are neighbors with higher rank.
/// Materialized as a CSR of the DAG, used by triangle/4-clique enumerators.
class OrientedGraph {
 public:
  OrientedGraph(const Graph& g, const std::vector<VertexId>& ranks);

  std::size_t NumVertices() const { return offsets_.size() - 1; }

  std::span<const VertexId> OutNeighbors(VertexId v) const {
    return {out_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  Degree OutDegree(VertexId v) const {
    return static_cast<Degree>(offsets_[v + 1] - offsets_[v]);
  }

 private:
  std::vector<std::size_t> offsets_;
  std::vector<VertexId> out_;  // sorted ascending within each list
};

}  // namespace nucleus

#endif  // NUCLEUS_GRAPH_ORDERING_H_
