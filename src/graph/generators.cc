#include "src/graph/generators.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/graph/builder.h"

namespace nucleus {

Graph GenerateErdosRenyi(std::size_t n, std::size_t m, std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t max_edges = n < 2 ? 0 : n * (n - 1) / 2;
  m = std::min(m, max_edges);
  std::set<std::pair<VertexId, VertexId>> chosen;
  while (chosen.size() < m) {
    VertexId u = static_cast<VertexId>(rng.UniformInt(0, n - 1));
    VertexId v = static_cast<VertexId>(rng.UniformInt(0, n - 1));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    chosen.emplace(u, v);
  }
  std::vector<std::pair<VertexId, VertexId>> edges(chosen.begin(),
                                                   chosen.end());
  return BuildGraphFromEdges(n, edges);
}

Graph GenerateBarabasiAlbert(std::size_t n, std::size_t attach,
                             std::uint64_t seed) {
  Rng rng(seed);
  if (attach == 0) attach = 1;
  if (n < attach + 1) n = attach + 1;
  std::vector<std::pair<VertexId, VertexId>> edges;
  // Endpoint multiset: sampling uniformly from it is degree-proportional.
  std::vector<VertexId> endpoints;
  // Seed clique over the first attach+1 vertices.
  for (VertexId u = 0; u <= attach; ++u) {
    for (VertexId v = u + 1; v <= attach; ++v) {
      edges.emplace_back(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (VertexId v = static_cast<VertexId>(attach + 1); v < n; ++v) {
    std::set<VertexId> targets;
    while (targets.size() < attach) {
      const VertexId t =
          endpoints[rng.UniformInt(0, endpoints.size() - 1)];
      if (t != v) targets.insert(t);
    }
    for (VertexId t : targets) {
      edges.emplace_back(t, v);
      endpoints.push_back(t);
      endpoints.push_back(v);
    }
  }
  return BuildGraphFromEdges(n, edges);
}

Graph GenerateRmat(int scale, std::size_t edge_factor, std::uint64_t seed,
                   double a, double b, double c) {
  Rng rng(seed);
  const std::size_t n = std::size_t{1} << scale;
  const std::size_t samples = edge_factor * n;
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    std::size_t u = 0, v = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double r = rng.UniformReal();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left quadrant: no bits set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v) continue;
    edges.emplace_back(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  return BuildGraphFromEdges(n, edges);  // builder dedups
}

Graph GeneratePlantedPartition(std::size_t blocks, std::size_t block_size,
                               double p_in, double p_out,
                               std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t n = blocks * block_size;
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      const bool same = (u / block_size) == (v / block_size);
      if (rng.Flip(same ? p_in : p_out)) edges.emplace_back(u, v);
    }
  }
  return BuildGraphFromEdges(n, edges);
}

Graph GenerateWattsStrogatz(std::size_t n, std::size_t k, double beta,
                            std::uint64_t seed) {
  Rng rng(seed);
  if (k % 2 == 1) ++k;  // k nearest neighbors means k/2 on each side
  std::set<std::pair<VertexId, VertexId>> chosen;
  auto add = [&](VertexId u, VertexId v) {
    if (u == v) return;
    if (u > v) std::swap(u, v);
    chosen.emplace(u, v);
  };
  for (VertexId u = 0; u < n; ++u) {
    for (std::size_t j = 1; j <= k / 2; ++j) {
      const VertexId v = static_cast<VertexId>((u + j) % n);
      if (rng.Flip(beta)) {
        // Rewire to a uniform random target.
        VertexId t;
        do {
          t = static_cast<VertexId>(rng.UniformInt(0, n - 1));
        } while (t == u);
        add(u, t);
      } else {
        add(u, v);
      }
    }
  }
  std::vector<std::pair<VertexId, VertexId>> edges(chosen.begin(),
                                                   chosen.end());
  return BuildGraphFromEdges(n, edges);
}

Graph GenerateNestedCliques(std::size_t levels, std::size_t base,
                            std::size_t step, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<VertexId, VertexId>> edges;
  VertexId next = 0;
  std::vector<VertexId> prev_members;
  const std::size_t overlap = 2;
  for (std::size_t level = 0; level < levels; ++level) {
    const std::size_t size = base + level * step;
    std::vector<VertexId> members;
    // Share `overlap` vertices with the previous level's clique so the
    // denser clique nests inside the sparser region's connectivity.
    for (std::size_t i = 0; i < overlap && i < prev_members.size(); ++i) {
      members.push_back(prev_members[i]);
    }
    while (members.size() < size) members.push_back(next++);
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        edges.emplace_back(std::min(members[i], members[j]),
                           std::max(members[i], members[j]));
      }
    }
    prev_members = std::move(members);
  }
  // Sparse backbone: a few random chords to keep everything connected and
  // give low-kappa fringe.
  const std::size_t n = next;
  for (std::size_t i = 0; i + 1 < n; i += 3) {
    edges.emplace_back(static_cast<VertexId>(i),
                       static_cast<VertexId>(
                           rng.UniformInt(0, n - 1)));
  }
  return BuildGraphFromEdges(n, edges);
}

Graph GenerateComplete(std::size_t n) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return BuildGraphFromEdges(n, edges);
}

Graph GenerateCycle(std::size_t n) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  if (n >= 3) {
    for (VertexId u = 0; u < n; ++u) {
      edges.emplace_back(u, static_cast<VertexId>((u + 1) % n));
    }
  }
  return BuildGraphFromEdges(n, edges);
}

Graph GeneratePath(std::size_t n) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u + 1 < n; ++u) {
    edges.emplace_back(u, static_cast<VertexId>(u + 1));
  }
  return BuildGraphFromEdges(n, edges);
}

Graph GenerateStar(std::size_t n) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId v = 1; v < n; ++v) edges.emplace_back(0, v);
  return BuildGraphFromEdges(n, edges);
}

Graph GenerateCompleteBipartite(std::size_t a, std::size_t b) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < a; ++u) {
    for (VertexId v = 0; v < b; ++v) {
      edges.emplace_back(u, static_cast<VertexId>(a + v));
    }
  }
  return BuildGraphFromEdges(a + b, edges);
}

Graph GenerateGrid(std::size_t rows, std::size_t cols) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<VertexId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return BuildGraphFromEdges(rows * cols, edges);
}

}  // namespace nucleus
