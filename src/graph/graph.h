// Immutable undirected graph in CSR (compressed sparse row) form.
#ifndef NUCLEUS_GRAPH_GRAPH_H_
#define NUCLEUS_GRAPH_GRAPH_H_

#include <cstddef>
#include <span>
#include <vector>

#include "src/common/types.h"

namespace nucleus {

/// Simple undirected graph: no self loops, no parallel edges, adjacency
/// lists sorted ascending. Built via GraphBuilder (builder.h) or the
/// generators; the invariants above are enforced at build time.
class Graph {
 public:
  Graph() = default;

  /// Takes ownership of CSR arrays. offsets.size() == n+1,
  /// neighbors.size() == offsets[n] == 2m. Callers must guarantee the
  /// class invariants (sorted, deduped, loop-free); GraphBuilder does.
  Graph(std::vector<std::size_t> offsets, std::vector<VertexId> neighbors);

  /// Number of vertices.
  std::size_t NumVertices() const { return num_vertices_; }

  /// Number of undirected edges.
  std::size_t NumEdges() const { return neighbors_.size() / 2; }

  /// Degree of v.
  Degree GetDegree(VertexId v) const {
    return static_cast<Degree>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted neighbor list of v.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {neighbors_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// True iff the edge {u, v} exists. O(log deg) via binary search on the
  /// smaller endpoint's list.
  bool HasEdge(VertexId u, VertexId v) const;

  /// Maximum degree over all vertices (0 for the empty graph).
  Degree MaxDegree() const;

  /// CSR internals, exposed for the clique enumerators.
  const std::vector<std::size_t>& Offsets() const { return offsets_; }
  const std::vector<VertexId>& NeighborArray() const { return neighbors_; }

 private:
  std::size_t num_vertices_ = 0;
  std::vector<std::size_t> offsets_{0};
  std::vector<VertexId> neighbors_;
};

}  // namespace nucleus

#endif  // NUCLEUS_GRAPH_GRAPH_H_
