#include "src/graph/io.h"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/graph/builder.h"

namespace nucleus {

namespace {
constexpr std::uint64_t kBinaryMagic = 0x4e55434c45555347ull;  // "NUCLEUSG"
}  // namespace

Graph LoadEdgeListText(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open graph file: " + path);
  GraphBuilder builder(/*relabel=*/true);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ss(line);
    std::uint64_t u, v;
    if (!(ss >> u >> v)) {
      throw std::runtime_error("malformed edge at " + path + ":" +
                               std::to_string(lineno));
    }
    builder.AddEdge(u, v);
  }
  return builder.Build();
}

void SaveEdgeListText(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write graph file: " + path);
  out << "# nucleus edge list: " << g.NumVertices() << " vertices, "
      << g.NumEdges() << " edges\n";
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v : g.Neighbors(u)) {
      if (u < v) out << u << ' ' << v << '\n';
    }
  }
}

void SaveBinary(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write graph file: " + path);
  auto put64 = [&](std::uint64_t x) {
    out.write(reinterpret_cast<const char*>(&x), sizeof(x));
  };
  put64(kBinaryMagic);
  put64(g.NumVertices());
  put64(g.NeighborArray().size());
  for (std::size_t off : g.Offsets()) put64(off);
  out.write(reinterpret_cast<const char*>(g.NeighborArray().data()),
            static_cast<std::streamsize>(g.NeighborArray().size() *
                                         sizeof(VertexId)));
}

Graph LoadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open graph file: " + path);
  auto get64 = [&] {
    std::uint64_t x = 0;
    in.read(reinterpret_cast<char*>(&x), sizeof(x));
    if (!in) throw std::runtime_error("truncated graph file: " + path);
    return x;
  };
  if (get64() != kBinaryMagic) {
    throw std::runtime_error("bad magic in graph file: " + path);
  }
  const std::size_t n = get64();
  const std::size_t deg_sum = get64();
  std::vector<std::size_t> offsets(n + 1);
  for (auto& off : offsets) off = get64();
  if (offsets.back() != deg_sum) {
    throw std::runtime_error("inconsistent CSR in graph file: " + path);
  }
  std::vector<VertexId> neighbors(deg_sum);
  in.read(reinterpret_cast<char*>(neighbors.data()),
          static_cast<std::streamsize>(deg_sum * sizeof(VertexId)));
  if (!in) throw std::runtime_error("truncated graph file: " + path);
  return Graph(std::move(offsets), std::move(neighbors));
}

}  // namespace nucleus
