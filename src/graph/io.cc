#include "src/graph/io.h"

#include <charconv>
#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <system_error>

#include "src/common/fault_injection.h"
#include "src/graph/builder.h"

namespace nucleus {

namespace {
constexpr std::uint64_t kBinaryMagic = 0x4e55434c45555347ull;  // "NUCLEUSG"

// Ids must survive the narrowing to the signed 32-bit VertexId used by
// every downstream index, so anything >= 2^31 is rejected at the door.
constexpr std::uint64_t kMaxVertexId = (std::uint64_t{1} << 31) - 1;

// Converts a failed Status into the exception the legacy API promised.
[[noreturn]] void ThrowStatus(const Status& s) {
  throw std::runtime_error(s.message());
}

const char* SkipSpace(const char* p, const char* end) {
  while (p != end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
  return p;
}

enum class ParseId { kOk, kNonNumeric, kOutOfRange };

// Parses one base-10 vertex id token at *p, advancing past it on success.
ParseId ParseVertexId(const char** p, const char* end, std::uint64_t* out) {
  auto [next, ec] = std::from_chars(*p, end, *out);
  if (ec == std::errc::result_out_of_range) return ParseId::kOutOfRange;
  if (ec != std::errc() || next == *p) return ParseId::kNonNumeric;
  // A token like "12x" is garbage, not the id 12 — the character after the
  // digits must be a separator (or the end of the line).
  if (next != end && *next != ' ' && *next != '\t' && *next != '\r') {
    return ParseId::kNonNumeric;
  }
  *p = next;
  if (*out > kMaxVertexId) return ParseId::kOutOfRange;
  return ParseId::kOk;
}

std::string At(const std::string& path, std::size_t lineno) {
  return path + ":" + std::to_string(lineno);
}
}  // namespace

StatusOr<Graph> TryLoadEdgeListText(const std::string& path) {
  NUCLEUS_FAULT_POINT("io_load_text");
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open graph file: " + path);
  GraphBuilder builder(/*relabel=*/true);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // A UTF-8 BOM on the first line (Windows-re-encoded SNAP mirrors) is
    // stripped, not treated as a non-numeric token.
    if (lineno == 1 && line.size() >= 3 && line[0] == '\xef' &&
        line[1] == '\xbb' && line[2] == '\xbf') {
      line.erase(0, 3);
    }
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    const char* p = line.data();
    const char* end = p + line.size();
    p = SkipSpace(p, end);
    if (p == end) continue;  // whitespace-only line
    std::uint64_t ids[2];
    for (int k = 0; k < 2; ++k) {
      if (k > 0) {
        p = SkipSpace(p, end);
        if (p == end) {
          return Status::InvalidArgument("truncated edge (missing second "
                                         "endpoint) at " +
                                         At(path, lineno));
        }
      }
      switch (ParseVertexId(&p, end, &ids[k])) {
        case ParseId::kOk:
          break;
        case ParseId::kNonNumeric:
          return Status::InvalidArgument("non-numeric vertex id at " +
                                         At(path, lineno));
        case ParseId::kOutOfRange:
          return Status::InvalidArgument(
              "vertex id exceeds 2^31 - 1 at " + At(path, lineno));
      }
    }
    if (SkipSpace(p, end) != end) {
      return Status::InvalidArgument("trailing garbage after edge at " +
                                     At(path, lineno));
    }
    builder.AddEdge(ids[0], ids[1]);
  }
  if (in.bad()) return Status::Internal("read error on graph file: " + path);
  return builder.Build();
}

Status TrySaveEdgeListText(const Graph& g, const std::string& path) {
  NUCLEUS_FAULT_POINT("io_save");
  std::ofstream out(path);
  if (!out) {
    return Status::FailedPrecondition("cannot write graph file: " + path);
  }
  out << "# nucleus edge list: " << g.NumVertices() << " vertices, "
      << g.NumEdges() << " edges\n";
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v : g.Neighbors(u)) {
      if (u < v) out << u << ' ' << v << '\n';
    }
  }
  if (!out) return Status::Internal("short write to graph file: " + path);
  return Status::Ok();
}

Status TrySaveBinary(const Graph& g, const std::string& path) {
  NUCLEUS_FAULT_POINT("io_save");
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::FailedPrecondition("cannot write graph file: " + path);
  }
  auto put64 = [&](std::uint64_t x) {
    out.write(reinterpret_cast<const char*>(&x), sizeof(x));
  };
  put64(kBinaryMagic);
  put64(g.NumVertices());
  put64(g.NeighborArray().size());
  for (std::size_t off : g.Offsets()) put64(off);
  out.write(reinterpret_cast<const char*>(g.NeighborArray().data()),
            static_cast<std::streamsize>(g.NeighborArray().size() *
                                         sizeof(VertexId)));
  if (!out) return Status::Internal("short write to graph file: " + path);
  return Status::Ok();
}

StatusOr<Graph> TryLoadBinary(const std::string& path) {
  NUCLEUS_FAULT_POINT("io_load_binary");
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open graph file: " + path);
  in.seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);
  bool truncated = false;
  auto get64 = [&] {
    std::uint64_t x = 0;
    in.read(reinterpret_cast<char*>(&x), sizeof(x));
    if (!in) truncated = true;
    return x;
  };
  const std::uint64_t magic = get64();
  if (truncated || magic != kBinaryMagic) {
    return Status::InvalidArgument("bad magic in graph file: " + path);
  }
  const std::uint64_t n = get64();
  const std::uint64_t deg_sum = get64();
  if (truncated) {
    return Status::InvalidArgument("truncated graph file: " + path);
  }
  // The header fields are untrusted: bound them by the bytes actually in
  // the file BEFORE sizing any allocation, so a crafted header cannot
  // overflow n + 1, trigger a std::bad_alloc (the Try* contract is
  // Status-only), or walk past the payload.
  const std::uint64_t remaining = file_size - 3 * sizeof(std::uint64_t);
  if (n > remaining / sizeof(std::uint64_t) ||
      deg_sum > remaining / sizeof(VertexId) ||
      (n + 1) * sizeof(std::uint64_t) + deg_sum * sizeof(VertexId) >
          remaining) {
    return Status::InvalidArgument("inconsistent header in graph file: " +
                                   path);
  }
  std::vector<std::size_t> offsets(n + 1);
  for (auto& off : offsets) off = get64();
  if (truncated) {
    return Status::InvalidArgument("truncated graph file: " + path);
  }
  if (offsets.back() != deg_sum) {
    return Status::InvalidArgument("inconsistent CSR in graph file: " + path);
  }
  std::vector<VertexId> neighbors(deg_sum);
  in.read(reinterpret_cast<char*>(neighbors.data()),
          static_cast<std::streamsize>(deg_sum * sizeof(VertexId)));
  if (!in) return Status::InvalidArgument("truncated graph file: " + path);
  return Graph(std::move(offsets), std::move(neighbors));
}

StatusOr<Graph> TryLoadGraphAuto(const std::string& path) {
  std::uint64_t head = 0;
  {
    std::ifstream probe(path, std::ios::binary);
    if (!probe) return Status::NotFound("cannot open graph file: " + path);
    probe.read(reinterpret_cast<char*>(&head), sizeof(head));
    // A file shorter than the magic cannot be binary; fall through to the
    // text reader, which reports precise diagnostics.
  }
  if (head == kBinaryMagic) return TryLoadBinary(path);
  return TryLoadEdgeListText(path);
}

Graph LoadEdgeListText(const std::string& path) {
  StatusOr<Graph> g = TryLoadEdgeListText(path);
  if (!g.ok()) ThrowStatus(g.status());
  return std::move(g).value();
}

void SaveEdgeListText(const Graph& g, const std::string& path) {
  const Status s = TrySaveEdgeListText(g, path);
  if (!s.ok()) ThrowStatus(s);
}

void SaveBinary(const Graph& g, const std::string& path) {
  const Status s = TrySaveBinary(g, path);
  if (!s.ok()) ThrowStatus(s);
}

Graph LoadBinary(const std::string& path) {
  StatusOr<Graph> g = TryLoadBinary(path);
  if (!g.ok()) ThrowStatus(g.status());
  return std::move(g).value();
}

}  // namespace nucleus
