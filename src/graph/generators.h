// Synthetic graph generators. These stand in for the paper's SNAP/KONECT
// datasets (see DESIGN.md section 3): power-law RMAT and Barabasi-Albert for
// web/social shape, planted partition for community structure, Watts-Strogatz
// for high clustering, plus deterministic reference families used in tests.
#ifndef NUCLEUS_GRAPH_GENERATORS_H_
#define NUCLEUS_GRAPH_GENERATORS_H_

#include <cstdint>

#include "src/graph/graph.h"

namespace nucleus {

/// G(n, m): m distinct uniform random edges.
Graph GenerateErdosRenyi(std::size_t n, std::size_t m, std::uint64_t seed);

/// Barabasi-Albert preferential attachment: each new vertex attaches to
/// `attach` existing vertices proportionally to degree. Produces power-law
/// degrees and a dense early core.
Graph GenerateBarabasiAlbert(std::size_t n, std::size_t attach,
                             std::uint64_t seed);

/// RMAT / Kronecker-style generator: 2^scale vertices, edge_factor * 2^scale
/// edge samples with quadrant probabilities (a, b, c; d = 1-a-b-c).
/// Defaults follow Graph500 (0.57, 0.19, 0.19).
Graph GenerateRmat(int scale, std::size_t edge_factor, std::uint64_t seed,
                   double a = 0.57, double b = 0.19, double c = 0.19);

/// Planted partition: `blocks` communities of `block_size` vertices;
/// within-community edge probability p_in, across p_out. High p_in plants
/// dense nuclei, the hierarchy of which the examples explore.
Graph GeneratePlantedPartition(std::size_t blocks, std::size_t block_size,
                               double p_in, double p_out, std::uint64_t seed);

/// Watts-Strogatz small world: ring of n vertices, each tied to k nearest
/// neighbors, each edge rewired with probability beta.
Graph GenerateWattsStrogatz(std::size_t n, std::size_t k, double beta,
                            std::uint64_t seed);

/// Hierarchically nested cliques: levels of cliques where level i is a
/// K_{base + i*step} sharing `overlap` vertices with its parent, plus a
/// sparse backbone. Deterministic; produces a known nucleus hierarchy, used
/// by tests and the community_hierarchy example.
Graph GenerateNestedCliques(std::size_t levels, std::size_t base,
                            std::size_t step, std::uint64_t seed);

/// Complete graph K_n (deterministic).
Graph GenerateComplete(std::size_t n);

/// Cycle C_n (deterministic).
Graph GenerateCycle(std::size_t n);

/// Path P_n (deterministic).
Graph GeneratePath(std::size_t n);

/// Star with n-1 leaves (deterministic).
Graph GenerateStar(std::size_t n);

/// Complete bipartite K_{a,b} (deterministic; triangle-free).
Graph GenerateCompleteBipartite(std::size_t a, std::size_t b);

/// 2D grid graph (deterministic; triangle-free).
Graph GenerateGrid(std::size_t rows, std::size_t cols);

}  // namespace nucleus

#endif  // NUCLEUS_GRAPH_GENERATORS_H_
