// Delta-compressed materialized clique-space adapter. CsrSpace stores every
// co-member id verbatim (arity x 4 bytes per s-clique: 24 B/triangle for the
// (3,4) space), which ROADMAP names as the memory wall for pinning many hot
// graphs. CompressedCsrSpace keeps the same build path — the specialized
// single-enumeration BuildCsrArena builders — but re-encodes each r-clique's
// co-member lists into a single byte arena: groups are sorted (within a
// group ascending, groups lexicographically), the first group head is a raw
// varint, every later head is a non-negative delta from the previous head,
// and within-group elements are positive deltas from their predecessor.
// Sorted adjacency-like id lists have small gaps, so most deltas fit one
// LEB128 byte and the arena shrinks by several x.
//
// ForEachSClique decodes block-wise (~kDecodeBlockIds ids) into per-worker
// thread-local scratch and only then replays the callback over the decoded
// groups, so the branchy varint decode and the engine's sequential scan stay
// in separate tight loops over a cache-resident block (the compute/decode
// overlap argument). Group reordering is invisible to every consumer: kappa
// is the unique fixed point (Theorems 1-3) and the SND/AND updates are
// h-indices over the co-member multiset, so tau and kappa stay bitwise
// identical to the uncompressed arena and the on-the-fly spaces.
//
// The compressed arena is IMMUTABLE: there is no ApplyPatch (a varint byte
// stream has no slack for in-place sentinels). The session drops compressed
// arenas on a mutating commit and rebuilds them lazily on the next decompose
// (SessionStats::compressed_drops), while uncompressed arenas stay patchable.
#ifndef NUCLEUS_CLIQUE_COMPRESSED_CSR_SPACE_H_
#define NUCLEUS_CLIQUE_COMPRESSED_CSR_SPACE_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "src/clique/csr_space.h"
#include "src/common/cancel.h"
#include "src/common/types.h"

namespace nucleus {

namespace internal {

/// LEB128: 7 value bits per byte, high bit = continuation. Ids are 32-bit
/// but the helpers take uint64 so the codec round-trips any delta sum.
inline void AppendVarint(std::vector<std::uint8_t>* out, std::uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<std::uint8_t>(v));
}

/// Decodes one varint at p (trusted input: the encoder wrote it, so no
/// bounds checks in the hot decode loop). Returns the byte past the varint.
inline const std::uint8_t* DecodeVarint(const std::uint8_t* p,
                                        std::uint64_t* v) {
  std::uint64_t value = *p & 0x7f;
  int shift = 7;
  while ((*p & 0x80) != 0) {
    ++p;
    value |= static_cast<std::uint64_t>(*p & 0x7f) << shift;
    shift += 7;
  }
  *v = value;
  return p + 1;
}

/// Ids decoded per scratch block in ForEachSClique. One block of co-member
/// groups is decoded into thread-local scratch, then the callback replays
/// over the decoded spans — decode and scan never interleave per group.
inline constexpr std::size_t kDecodeBlockIds = 128;

/// The delta+varint encoded arena: per-r-clique byte ranges into one byte
/// buffer, plus the uncompressed degrees (d_s per r-clique, needed as the
/// engines' tau_0 anyway and as the group count during decode).
struct CompressedArena {
  std::vector<Degree> degrees;
  std::vector<std::uint64_t> byte_offsets;  // n + 1 offsets into bytes
  std::vector<std::uint8_t> bytes;
};

/// Resident bytes of a compressed arena (same accounting style as
/// CsrArenaBytes: payload vectors).
inline std::uint64_t CompressedArenaBytes(std::size_t n,
                                          std::uint64_t encoded_bytes) {
  return encoded_bytes + (n + 1) * sizeof(std::uint64_t) +
         n * sizeof(Degree);
}

/// Re-encodes an uncompressed CsrArena (consumed) into delta+varint form.
/// Returns false — leaving the degrees in arena->degrees for the caller's
/// fly fallback — when the RESIDENT compressed size would exceed
/// budget_bytes. The uncompressed arena is transient build scratch here;
/// the budget prices only what stays resident.
bool EncodeCompressedArena(CsrArena* arena, int arity,
                           std::uint64_t budget_bytes, CompressedArena* out);

}  // namespace internal

template <typename Space>
class CompressedCsrSpace {
 public:
  /// Builds unconditionally (no memory budget).
  explicit CompressedCsrSpace(const Space& base, int threads = 1)
      : base_(&base), arity_(CoMemberArity(base)) {
    internal::CsrArena arena;
    const bool built =
        BuildCsrArena(base, threads,
                      std::numeric_limits<std::uint64_t>::max(), arity_,
                      &arena);
    (void)built;
    const bool ok = internal::EncodeCompressedArena(
        &arena, arity_, std::numeric_limits<std::uint64_t>::max(), &packed_);
    (void)ok;
  }

  /// Budget-checked build, mirroring CsrSpace::TryBuild: std::nullopt when
  /// the compressed arena would exceed budget_bytes, with the counted
  /// degrees left in *degrees_out so the fly fallback never re-counts.
  /// A stoppable ctl makes the build abandonable (nullopt, NO degrees
  /// contract — check ctl.ShouldStop() to tell the cases apart).
  ///
  /// Peak transient memory is the UNCOMPRESSED arena (the single-
  /// enumeration builders are reused, then re-encoded); budget_bytes
  /// bounds only the resident compressed form.
  static std::optional<CompressedCsrSpace> TryBuild(
      const Space& base, int threads, std::uint64_t budget_bytes,
      std::vector<Degree>* degrees_out, RunControl ctl = {}) {
    CompressedCsrSpace space(&base, CoMemberArity(base));
    internal::CsrArena arena;
    if (!BuildCsrArena(base, threads,
                       std::numeric_limits<std::uint64_t>::max(),
                       space.arity_, &arena, ctl)) {
      // An unlimited-budget build only fails when stopped.
      return std::nullopt;
    }
    if (ctl.CanStop() && ctl.ShouldStop()) return std::nullopt;
    if (!internal::EncodeCompressedArena(&arena, space.arity_, budget_bytes,
                                         &space.packed_)) {
      if (degrees_out != nullptr) *degrees_out = std::move(arena.degrees);
      return std::nullopt;
    }
    return space;
  }

  std::size_t NumRCliques() const { return packed_.degrees.size(); }

  /// d_s per r-clique — cached from the build, so this is free.
  std::vector<Degree> InitialDegrees(int /*threads*/ = 1) const {
    return packed_.degrees;
  }

  /// Liveness, delegated to the wrapped space (compressed arenas are never
  /// patched, so base and arena always cover the same id range).
  bool IsLiveR(CliqueId r) const {
    if constexpr (requires { base_->IsLiveR(r); }) {
      return base_->IsLiveR(r);
    } else {
      return true;
    }
  }

  std::vector<std::uint8_t> LiveRFlags() const {
    if constexpr (requires { base_->LiveRFlags(); }) {
      return base_->LiveRFlags();
    } else {
      return {};
    }
  }

  /// Block-wise decode-then-scan (see file comment): up to kDecodeBlockIds
  /// ids are varint-decoded into thread-local scratch, then fn is replayed
  /// over the decoded arity-spans, alternating until r's list is done.
  template <typename Fn>
  void ForEachSClique(CliqueId r, Fn&& fn) const {
    Degree remaining = packed_.degrees[r];
    if (remaining == 0) return;
    const std::size_t arity = static_cast<std::size_t>(arity_);
    const std::size_t groups_per_block =
        std::max<std::size_t>(1, internal::kDecodeBlockIds / arity);
    static thread_local std::vector<CliqueId> scratch;
    if (scratch.size() < groups_per_block * arity) {
      scratch.resize(groups_per_block * arity);
    }
    const std::uint8_t* p = packed_.bytes.data() + packed_.byte_offsets[r];
    std::uint64_t prev_head = 0;
    bool first = true;
    while (remaining > 0) {
      const std::size_t block = std::min<std::size_t>(
          remaining, groups_per_block);
      CliqueId* s = scratch.data();
      for (std::size_t g = 0; g < block; ++g) {
        std::uint64_t delta;
        p = internal::DecodeVarint(p, &delta);
        const std::uint64_t head = first ? delta : prev_head + delta;
        first = false;
        prev_head = head;
        std::uint64_t prev = head;
        s[0] = static_cast<CliqueId>(head);
        for (std::size_t k = 1; k < arity; ++k) {
          p = internal::DecodeVarint(p, &delta);
          prev += delta;
          s[k] = static_cast<CliqueId>(prev);
        }
        s += arity;
      }
      const CliqueId* base = scratch.data();
      for (std::size_t g = 0; g < block; ++g) {
        fn(std::span<const CliqueId>(base + g * arity, arity));
      }
      remaining -= static_cast<Degree>(block);
    }
  }

  /// Ids per s-clique (C(s,r) - 1).
  int arity() const { return arity_; }

  /// Resident bytes of the compressed arena.
  std::uint64_t MemoryBytes() const {
    return internal::CompressedArenaBytes(packed_.degrees.size(),
                                          packed_.bytes.size());
  }

  /// Bytes the equivalent uncompressed CsrSpace arena would pin (the
  /// compression-ratio denominator reported by benches and stats).
  std::uint64_t UncompressedBytes() const {
    std::uint64_t total_s = 0;
    for (Degree d : packed_.degrees) total_s += d;
    return internal::CsrArenaBytes(packed_.degrees.size(), total_s, arity_);
  }

  /// The wrapped on-the-fly space.
  const Space& base() const { return *base_; }

 private:
  CompressedCsrSpace(const Space* base, int arity)
      : base_(base), arity_(arity) {}

  const Space* base_;
  int arity_ = 1;
  internal::CompressedArena packed_;
};

namespace internal {

/// A compressed arena is already a materialized adapter: the engines must
/// not re-wrap it (same contract as CsrSpace).
template <typename S>
struct IsCsrSpace<CompressedCsrSpace<S>> : std::true_type {};

}  // namespace internal

}  // namespace nucleus

#endif  // NUCLEUS_CLIQUE_COMPRESSED_CSR_SPACE_H_
