#include "src/clique/spaces.h"

namespace nucleus {

std::vector<Degree> CoreSpace::InitialDegrees(int /*threads*/) const {
  std::vector<Degree> d(g_->NumVertices());
  for (VertexId v = 0; v < g_->NumVertices(); ++v) d[v] = g_->GetDegree(v);
  return d;
}

std::vector<Degree> TrussSpace::InitialDegrees(int threads) const {
  return TriangleCountsPerEdge(*g_, *edges_, threads);
}

std::vector<Degree> Nucleus34Space::InitialDegrees(int threads) const {
  return FourCliqueCountsPerTriangle(*g_, *tris_, threads);
}

}  // namespace nucleus
