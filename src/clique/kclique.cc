#include "src/clique/kclique.h"

#include <algorithm>

#include "src/clique/intersect.h"
#include "src/graph/ordering.h"

namespace nucleus {

namespace {

// Recursive oriented enumeration: `chosen` holds the clique so far (in rank
// order), `cand` the common out-neighborhood of everything chosen.
void Expand(const OrientedGraph& oriented, int remaining,
            std::vector<VertexId>* chosen, std::vector<VertexId>* cand,
            std::vector<VertexId>* sorted_buf,
            const std::function<void(std::span<const VertexId>)>& fn) {
  if (remaining == 0) {
    sorted_buf->assign(chosen->begin(), chosen->end());
    std::sort(sorted_buf->begin(), sorted_buf->end());
    fn(*sorted_buf);
    return;
  }
  // Each candidate takes a turn as the next (rank-ordered) member.
  const std::vector<VertexId> current = *cand;  // copy: cand mutates below
  for (VertexId v : current) {
    chosen->push_back(v);
    if (remaining == 1) {
      sorted_buf->assign(chosen->begin(), chosen->end());
      std::sort(sorted_buf->begin(), sorted_buf->end());
      fn(*sorted_buf);
    } else {
      std::vector<VertexId> next;
      ForEachCommon(std::span<const VertexId>(current),
                    oriented.OutNeighbors(v), [&](VertexId w) {
                      next.push_back(w);
                    });
      Expand(oriented, remaining - 1, chosen, &next, sorted_buf, fn);
    }
    chosen->pop_back();
  }
}

}  // namespace

void ForEachKClique(
    const Graph& g, int k,
    const std::function<void(std::span<const VertexId>)>& fn) {
  if (k < 1) return;
  const std::size_t n = g.NumVertices();
  if (k == 1) {
    for (VertexId v = 0; v < n; ++v) {
      fn(std::span<const VertexId>(&v, 1));
    }
    return;
  }
  const auto ranks = DegreeOrderRanks(g);
  const OrientedGraph oriented(g, ranks);
  std::vector<VertexId> chosen, sorted_buf;
  for (VertexId v = 0; v < n; ++v) {
    chosen.assign(1, v);
    std::vector<VertexId> cand(oriented.OutNeighbors(v).begin(),
                               oriented.OutNeighbors(v).end());
    Expand(oriented, k - 1, &chosen, &cand, &sorted_buf, fn);
  }
}

Count CountKCliques(const Graph& g, int k) {
  Count total = 0;
  ForEachKClique(g, k, [&](std::span<const VertexId>) { ++total; });
  return total;
}

KCliqueIndex::KCliqueIndex(const Graph& g, int k) : k_(k) {
  ForEachKClique(g, k, [&](std::span<const VertexId> vs) {
    flat_.insert(flat_.end(), vs.begin(), vs.end());
  });
  // Sort tuples lexicographically via an index permutation.
  const std::size_t count = NumCliques();
  std::vector<CliqueId> order(count);
  for (CliqueId i = 0; i < count; ++i) order[i] = i;
  auto tuple_less = [&](CliqueId a, CliqueId b) {
    const VertexId* pa = flat_.data() + static_cast<std::size_t>(a) * k_;
    const VertexId* pb = flat_.data() + static_cast<std::size_t>(b) * k_;
    return std::lexicographical_compare(pa, pa + k_, pb, pb + k_);
  };
  std::sort(order.begin(), order.end(), tuple_less);
  std::vector<VertexId> sorted;
  sorted.reserve(flat_.size());
  for (CliqueId id : order) {
    const VertexId* p = flat_.data() + static_cast<std::size_t>(id) * k_;
    sorted.insert(sorted.end(), p, p + k_);
  }
  flat_ = std::move(sorted);
}

CliqueId KCliqueIndex::IdOf(std::span<const VertexId> sorted_vertices) const {
  if (static_cast<int>(sorted_vertices.size()) != k_) return kInvalidClique;
  const std::size_t count = NumCliques();
  std::size_t lo = 0, hi = count;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const VertexId* p = flat_.data() + mid * k_;
    if (std::lexicographical_compare(p, p + k_, sorted_vertices.begin(),
                                     sorted_vertices.end())) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == count) return kInvalidClique;
  const VertexId* p = flat_.data() + lo * k_;
  if (!std::equal(p, p + k_, sorted_vertices.begin())) {
    return kInvalidClique;
  }
  return static_cast<CliqueId>(lo);
}

}  // namespace nucleus
