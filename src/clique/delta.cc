#include "src/clique/delta.h"

#include <algorithm>

#include "src/clique/intersect.h"

namespace nucleus {

namespace {

std::array<VertexId, 3> SortedTriple(VertexId u, VertexId v, VertexId w) {
  std::array<VertexId, 3> t = {u, v, w};
  std::sort(t.begin(), t.end());
  return t;
}

template <typename T>
void SortUnique(std::vector<T>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

// Triangles of g containing edge {u, v} = common neighbors of u and v.
// Pairs that are not edges of g are skipped: a dead triangle must have
// existed (removed pair present in the old graph) and a born one must
// exist (inserted pair present in the new graph); without the guard an
// adversarial pair whose endpoints merely share neighbors would fabricate
// phantom cliques. Returns false when stopped via ctl (out is partial).
bool CollectTriangles(const Graph& g,
                      const std::vector<std::pair<VertexId, VertexId>>& pairs,
                      std::vector<std::array<VertexId, 3>>* out,
                      RunControl ctl) {
  const bool can_stop = ctl.CanStop();
  CheckEvery<64> poll;
  for (const auto& [u, v] : pairs) {
    if (can_stop && poll.Due() && ctl.ShouldStop()) return false;
    if (u == v || u >= g.NumVertices() || v >= g.NumVertices() ||
        !g.HasEdge(u, v)) {
      continue;
    }
    ForEachCommon(g.Neighbors(u), g.Neighbors(v), [&, u = u, v = v](
                                                      VertexId w) {
      out->push_back(SortedTriple(u, v, w));
    });
  }
  SortUnique(out);
  return true;
}

// 4-cliques of g containing edge {u, v} = adjacent pairs {w, x} in the
// common neighborhood of u and v. Returns false when stopped via ctl.
bool CollectFourCliques(
    const Graph& g, const std::vector<std::pair<VertexId, VertexId>>& pairs,
    std::vector<std::array<VertexId, 4>>* out, RunControl ctl) {
  const bool can_stop = ctl.CanStop();
  CheckEvery<16> poll;
  std::vector<VertexId> common;
  for (const auto& [u, v] : pairs) {
    // The common-neighborhood pair scan can be quadratic in the hub degree
    // on skewed graphs, hence the tighter poll period than the triangle
    // collector's.
    if (can_stop && poll.Due() && ctl.ShouldStop()) return false;
    if (u == v || u >= g.NumVertices() || v >= g.NumVertices() ||
        !g.HasEdge(u, v)) {
      continue;
    }
    common.clear();
    ForEachCommon(g.Neighbors(u), g.Neighbors(v),
                  [&](VertexId w) { common.push_back(w); });
    for (std::size_t i = 0; i < common.size(); ++i) {
      for (std::size_t j = i + 1; j < common.size(); ++j) {
        if (!g.HasEdge(common[i], common[j])) continue;
        std::array<VertexId, 4> q = {u, v, common[i], common[j]};
        std::sort(q.begin(), q.end());
        out->push_back(q);
      }
    }
  }
  SortUnique(out);
  return true;
}

}  // namespace

TriangleDelta ComputeTriangleDelta(const Graph& old_graph,
                                   const Graph& new_graph,
                                   const EdgeDelta& delta, RunControl ctl) {
  TriangleDelta out;
  out.aborted = !CollectTriangles(old_graph, delta.removed, &out.dead, ctl) ||
                !CollectTriangles(new_graph, delta.inserted, &out.born, ctl);
  return out;
}

FourCliqueDelta ComputeFourCliqueDelta(const Graph& old_graph,
                                       const Graph& new_graph,
                                       const EdgeDelta& delta,
                                       RunControl ctl) {
  FourCliqueDelta out;
  out.aborted =
      !CollectFourCliques(old_graph, delta.removed, &out.dead, ctl) ||
      !CollectFourCliques(new_graph, delta.inserted, &out.born, ctl);
  return out;
}

}  // namespace nucleus
