#include "src/clique/csr_space.h"

#include <algorithm>
#include <array>
#include <atomic>

#include "src/clique/four_cliques.h"
#include "src/clique/triangles.h"

namespace nucleus {

namespace {

// Computes arena offsets from per-r-clique s-clique counts and sizes the
// co-member array. Returns a scatter-cursor array initialized to the
// offsets.
std::vector<std::uint64_t> PrepareArena(const std::vector<Degree>& counts,
                                        int arity,
                                        internal::CsrArena* arena) {
  const std::size_t n = counts.size();
  arena->offsets.assign(n + 1, 0);
  for (std::size_t r = 0; r < n; ++r) {
    arena->offsets[r + 1] =
        arena->offsets[r] + static_cast<std::uint64_t>(counts[r]) * arity;
  }
  arena->co_members.resize(arena->offsets[n]);
  return std::vector<std::uint64_t>(arena->offsets.begin(),
                                    arena->offsets.end() - 1);
}

}  // namespace

int CoMemberArity(const GenericRsSpace& space) {
  // C(s, r) - 1 co-members per s-clique.
  const int r = space.enumerator().r();
  const int s = space.enumerator().s();
  std::uint64_t c = 1;
  for (int i = 1; i <= r; ++i) {
    c = c * static_cast<std::uint64_t>(s - r + i) / i;
  }
  return static_cast<int>(c) - 1;
}

bool BuildCsrArena(const CoreSpace& space, int threads,
                   std::uint64_t budget_bytes, int arity,
                   internal::CsrArena* arena, RunControl ctl) {
  return internal::GenericBuildCsrArena(space, threads, budget_bytes, arity,
                                        arena, ctl);
}

bool BuildCsrArena(const GenericRsSpace& space, int threads,
                   std::uint64_t budget_bytes, int arity,
                   internal::CsrArena* arena, RunControl ctl) {
  return internal::GenericBuildCsrArena(space, threads, budget_bytes, arity,
                                        arena, ctl);
}

// (2,3): one blocked oriented triangle enumeration records each triangle's
// three edge ids (3 binary searches per triangle, total — the on-the-fly
// space pays 2 per triangle *per edge per sweep* on top of the adjacency
// intersections). Counting and scattering then run over the compact triple
// buffers.
bool BuildCsrArena(const TrussSpace& space, int threads,
                   std::uint64_t budget_bytes, int arity,
                   internal::CsrArena* arena, RunControl ctl) {
  const Graph& g = space.graph();
  const EdgeIndex& edges = space.edges();
  const std::size_t m = edges.NumEdges();
  const int t = threads <= 1 ? 1 : threads;

  // Budgeted builds must decide BEFORE any O(#triangles) allocation (the
  // triple buffer below is ~half the arena). The O(m) wedge bound
  // (#triangles <= sum_e min(deg u, deg v) / 3) settles the common
  // comfortably-fits case for free; only graphs near the budget pay an
  // exact count-only pre-pass. Rejection still fulfills the degrees
  // contract via the standard per-edge intersections.
  if (budget_bytes != std::numeric_limits<std::uint64_t>::max()) {
    std::uint64_t wedge_bound = 0;
    for (std::size_t e = 0; e < m; ++e) {
      const auto [u, v] = edges.Endpoints(static_cast<EdgeId>(e));
      wedge_bound += std::min(g.GetDegree(u), g.GetDegree(v));
    }
    if (internal::CsrArenaBytes(m, wedge_bound, arity) > budget_bytes) {
      const Count total = CountTriangles(g, t, ctl);
      if (ctl.CanStop() && ctl.ShouldStop()) return false;
      if (internal::CsrArenaBytes(m, 3 * total, arity) > budget_bytes) {
        arena->degrees = space.InitialDegrees(t);
        return false;
      }
    }
  }

  std::vector<std::vector<std::array<EdgeId, 3>>> parts(t);
  ForEachTriangleBlocks(
      g, t,
      [&](int block, VertexId u, VertexId v, VertexId w) {
        parts[block].push_back({edges.EdgeIdOf(u, v), edges.EdgeIdOf(u, w),
                                edges.EdgeIdOf(v, w)});
      },
      ctl);
  if (ctl.CanStop() && ctl.ShouldStop()) return false;

  arena->degrees.assign(m, 0);
  // One block per worker: static schedule, not the chunked dynamic default
  // (whose 256-wide grabs would hand all t blocks to one thread).
  ParallelFor(
      static_cast<std::size_t>(t), t,
      [&](std::size_t b) {
        for (const auto& tri : parts[b]) {
          for (EdgeId e : tri) {
            std::atomic_ref<Degree>(arena->degrees[e])
                .fetch_add(1, std::memory_order_relaxed);
          }
        }
      },
      Schedule::kStatic);

  std::vector<std::uint64_t> cursor =
      PrepareArena(arena->degrees, arity, arena);
  ParallelFor(
      static_cast<std::size_t>(t), t,
      [&](std::size_t b) {
        for (const auto& tri : parts[b]) {
          for (int i = 0; i < 3; ++i) {
            const std::uint64_t pos =
                std::atomic_ref<std::uint64_t>(cursor[tri[i]])
                    .fetch_add(2, std::memory_order_relaxed);
            arena->co_members[pos] = tri[(i + 1) % 3];
            arena->co_members[pos + 1] = tri[(i + 2) % 3];
          }
        }
      },
      Schedule::kStatic);
  return true;
}

// (3,4): one blocked oriented 4-clique enumeration records each K4's four
// triangle ids (4 binary searches per K4, total — the on-the-fly space pays
// 3 per K4 *per triangle per sweep* on top of the 3-way intersections).
bool BuildCsrArena(const Nucleus34Space& space, int threads,
                   std::uint64_t budget_bytes, int arity,
                   internal::CsrArena* arena, RunControl ctl) {
  const Graph& g = space.graph();
  const TriangleIndex& tris = space.triangles();
  const std::size_t nt = tris.NumTriangles();
  const int t = threads <= 1 ? 1 : threads;

  // Budget decision before any O(#K4) allocation, as in the truss builder.
  // 4 * #K4 <= sum over triangles of min(deg of its vertices), an O(#tri)
  // bound that settles the comfortably-fits case without enumerating;
  // borderline graphs pay an exact count-only pre-pass.
  if (budget_bytes != std::numeric_limits<std::uint64_t>::max()) {
    std::uint64_t slot_bound = 0;
    for (std::size_t ti = 0; ti < nt; ++ti) {
      const auto& v = tris.Vertices(static_cast<TriangleId>(ti));
      slot_bound += std::min(
          {g.GetDegree(v[0]), g.GetDegree(v[1]), g.GetDegree(v[2])});
    }
    if (internal::CsrArenaBytes(nt, slot_bound, arity) > budget_bytes) {
      const Count total = CountFourCliques(g, t, ctl);
      if (ctl.CanStop() && ctl.ShouldStop()) return false;
      if (internal::CsrArenaBytes(nt, 4 * total, arity) > budget_bytes) {
        arena->degrees = space.InitialDegrees(t);
        return false;
      }
    }
  }

  std::vector<std::vector<std::array<TriangleId, 4>>> parts(t);
  ForEachFourCliqueBlocks(
      g, t,
      [&](int block, VertexId a, VertexId b, VertexId c, VertexId d) {
        parts[block].push_back({tris.TriangleIdOf(a, b, c),
                                tris.TriangleIdOf(a, b, d),
                                tris.TriangleIdOf(a, c, d),
                                tris.TriangleIdOf(b, c, d)});
      },
      ctl);
  if (ctl.CanStop() && ctl.ShouldStop()) return false;

  arena->degrees.assign(nt, 0);
  ParallelFor(
      static_cast<std::size_t>(t), t,
      [&](std::size_t b) {
        for (const auto& quad : parts[b]) {
          for (TriangleId tri : quad) {
            std::atomic_ref<Degree>(arena->degrees[tri])
                .fetch_add(1, std::memory_order_relaxed);
          }
        }
      },
      Schedule::kStatic);

  std::vector<std::uint64_t> cursor =
      PrepareArena(arena->degrees, arity, arena);
  ParallelFor(
      static_cast<std::size_t>(t), t,
      [&](std::size_t b) {
        for (const auto& quad : parts[b]) {
          for (int i = 0; i < 4; ++i) {
            const std::uint64_t pos =
                std::atomic_ref<std::uint64_t>(cursor[quad[i]])
                    .fetch_add(3, std::memory_order_relaxed);
            arena->co_members[pos] = quad[(i + 1) & 3];
            arena->co_members[pos + 1] = quad[(i + 2) & 3];
            arena->co_members[pos + 2] = quad[(i + 3) & 3];
          }
        }
      },
      Schedule::kStatic);
  return true;
}

}  // namespace nucleus
