// Materialized clique-space adapter. The on-the-fly spaces (spaces.h,
// generic_space.h) re-derive s-clique membership from adjacency
// intersections on every sweep of every SND/AND iteration — the paper's
// Section 5 design. CsrSpace<Space> trades memory for that compute: one
// parallel build pass enumerates every s-clique once and stores all
// co-member lists in a flat CSR arena (offsets[] + co_members[], fixed
// arity = C(s,r)-1 ids per s-clique), so each subsequent sweep is a
// contiguous, branch-light scan. The adapter models the same
// NumRCliques/InitialDegrees/ForEachSClique concept, so every generic
// engine (peeling, SND, AND, degree levels, hierarchy) consumes it
// unchanged. The local engines materialize automatically behind
// LocalOptions::materialize (auto/on/off with a memory budget).
#ifndef NUCLEUS_CLIQUE_CSR_SPACE_H_
#define NUCLEUS_CLIQUE_CSR_SPACE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/clique/generic_space.h"
#include "src/clique/spaces.h"
#include "src/common/cancel.h"
#include "src/common/parallel.h"
#include "src/common/types.h"

namespace nucleus {

/// Materialization policy for the local engines (LocalOptions::materialize).
/// kAuto is a degradation ladder: the uncompressed CSR arena when it fits
/// the budget, else the delta-compressed arena
/// (compressed_csr_space.h) when THAT fits, else on the fly.
enum class Materialize {
  kAuto,        // uncompressed -> compressed -> fly, budget-gated (default)
  kOn,          // always materialize uncompressed, ignoring the budget
  kOff,         // always enumerate on the fly (paper Section 5 behavior)
  kCompressed,  // materialize the delta-compressed arena (budget-gated;
                // degrades to on-the-fly when even that exceeds it)
};

/// Co-member arity of a space: every s-clique of an r-clique is reported as
/// C(s,r) - 1 co-member ids.
inline int CoMemberArity(const CoreSpace&) { return 1; }
inline int CoMemberArity(const TrussSpace&) { return 2; }
inline int CoMemberArity(const Nucleus34Space&) { return 3; }
int CoMemberArity(const GenericRsSpace& space);

namespace internal {

/// The flat storage built by the space-specific builders: degrees (d_s per
/// r-clique, a build by-product), offsets in co-member units, and the
/// co-member arena (arity consecutive ids per s-clique).
struct CsrArena {
  std::vector<Degree> degrees;
  std::vector<std::uint64_t> offsets;
  std::vector<CliqueId> co_members;
};

/// Estimated resident bytes of the arena for n r-cliques whose s-clique
/// count sums to total_s.
inline std::uint64_t CsrArenaBytes(std::size_t n, std::uint64_t total_s,
                                   int arity) {
  return total_s * static_cast<std::uint64_t>(arity) * sizeof(CliqueId) +
         (n + 1) * sizeof(std::uint64_t);
}

/// Generic two-pass builder over any space: counts via InitialDegrees, then
/// re-enumerates per r-clique into the arena. Returns false (leaving the
/// counted degrees in arena->degrees) when the arena would exceed
/// budget_bytes. The canonical spaces have cheaper specialized overloads in
/// csr_space.cc that enumerate each s-clique globally once instead of once
/// per member.
template <typename Space>
bool GenericBuildCsrArena(const Space& space, int threads,
                          std::uint64_t budget_bytes, int arity,
                          CsrArena* arena, RunControl ctl = {}) {
  const std::size_t n = space.NumRCliques();
  arena->degrees = space.InitialDegrees(threads);
  if (ctl.CanStop() && ctl.ShouldStop()) return false;
  std::uint64_t total_s = 0;
  for (Degree d : arena->degrees) total_s += d;
  if (CsrArenaBytes(n, total_s, arity) > budget_bytes) return false;
  arena->offsets.assign(n + 1, 0);
  for (std::size_t r = 0; r < n; ++r) {
    arena->offsets[r + 1] =
        arena->offsets[r] +
        static_cast<std::uint64_t>(arena->degrees[r]) * arity;
  }
  arena->co_members.resize(arena->offsets[n]);
  const bool can_stop = ctl.CanStop();
  AbortFlag abort;
  ParallelFor(n, threads, [&](std::size_t r) {
    if (can_stop && PollStopAmortized(ctl, abort)) return;
    std::uint64_t pos = arena->offsets[r];
    space.ForEachSClique(static_cast<CliqueId>(r),
                         [&](std::span<const CliqueId> co) {
                           assert(static_cast<int>(co.size()) == arity);
                           for (CliqueId c : co) arena->co_members[pos++] = c;
                         });
  });
  if (can_stop && ctl.ShouldStop()) return false;
  return true;
}

}  // namespace internal

// Specialized arena builders (csr_space.cc). The truss and (3,4) builders
// enumerate triangles / 4-cliques globally once (oriented enumeration) and
// scatter, instead of intersecting adjacency lists per r-clique, which also
// yields the initial degrees for free. All return false without building
// either when the arena would exceed budget_bytes (degrees contract
// honored) or when `ctl` stopped the build (degrees possibly partial —
// callers check ctl before trusting anything).
bool BuildCsrArena(const CoreSpace& space, int threads,
                   std::uint64_t budget_bytes, int arity,
                   internal::CsrArena* arena, RunControl ctl = {});
bool BuildCsrArena(const TrussSpace& space, int threads,
                   std::uint64_t budget_bytes, int arity,
                   internal::CsrArena* arena, RunControl ctl = {});
bool BuildCsrArena(const Nucleus34Space& space, int threads,
                   std::uint64_t budget_bytes, int arity,
                   internal::CsrArena* arena, RunControl ctl = {});
bool BuildCsrArena(const GenericRsSpace& space, int threads,
                   std::uint64_t budget_bytes, int arity,
                   internal::CsrArena* arena, RunControl ctl = {});

/// Fallback for user-defined spaces modeling the clique-space concept.
template <typename Space>
bool BuildCsrArena(const Space& space, int threads,
                   std::uint64_t budget_bytes, int arity,
                   internal::CsrArena* arena, RunControl ctl = {}) {
  return internal::GenericBuildCsrArena(space, threads, budget_bytes, arity,
                                        arena, ctl);
}

/// Arity for unknown spaces: probe the first non-empty r-clique. Spaces
/// with a known (r,s) should provide a CoMemberArity overload instead.
template <typename Space>
int CoMemberArity(const Space& space) {
  int arity = 1;
  for (std::size_t r = 0; r < space.NumRCliques(); ++r) {
    bool found = false;
    space.ForEachSClique(static_cast<CliqueId>(r),
                         [&](std::span<const CliqueId> co) {
                           arity = static_cast<int>(co.size());
                           found = true;
                         });
    if (found) return arity;
  }
  return arity;
}

template <typename Space>
class CsrSpace {
 public:
  /// Builds the arena unconditionally (no memory budget).
  explicit CsrSpace(const Space& base, int threads = 1) : base_(&base) {
    arity_ = CoMemberArity(base);
    internal::CsrArena arena;
    const bool ok =
        BuildCsrArena(base, threads,
                      std::numeric_limits<std::uint64_t>::max(), arity_,
                      &arena);
    assert(ok);
    (void)ok;
    Adopt(std::move(arena));
  }

  /// Budget-checked build. Returns std::nullopt when the arena would exceed
  /// budget_bytes; the s-clique counts computed during the attempt (== the
  /// space's InitialDegrees) are left in *degrees_out so the caller can
  /// reuse them instead of re-counting.
  ///
  /// A stoppable `ctl` also makes the build abandonable: on stop the
  /// result is std::nullopt with NO degrees contract (the partial counts
  /// are dropped) — callers distinguish the two nullopt cases by checking
  /// ctl.ShouldStop().
  static std::optional<CsrSpace> TryBuild(const Space& base, int threads,
                                          std::uint64_t budget_bytes,
                                          std::vector<Degree>* degrees_out,
                                          RunControl ctl = {}) {
    CsrSpace space(&base, CoMemberArity(base));
    internal::CsrArena arena;
    if (!BuildCsrArena(base, threads, budget_bytes, space.arity_, &arena,
                       ctl)) {
      if (ctl.CanStop() && ctl.ShouldStop()) return std::nullopt;
      if (degrees_out != nullptr) *degrees_out = std::move(arena.degrees);
      return std::nullopt;
    }
    space.Adopt(std::move(arena));
    return space;
  }

  std::size_t NumRCliques() const { return degrees_.size(); }

  /// d_s per r-clique — cached from the build, so this is free.
  std::vector<Degree> InitialDegrees(int /*threads*/ = 1) const {
    return degrees_;
  }

  /// Single-id liveness, delegated to the wrapped space (O(1)). Ids past
  /// the base's range — possible mid-patch only — default to live.
  bool IsLiveR(CliqueId r) const {
    if constexpr (requires { base_->IsLiveR(r); }) {
      return static_cast<std::size_t>(r) >= base_->NumRCliques() ||
             base_->IsLiveR(r);
    } else {
      return true;
    }
  }

  /// Liveness of the id range, delegated to the wrapped space (the session
  /// re-seats the base space on every commit, so its index liveness is
  /// current even when the arena was patched in place). Ids past the
  /// base's range — possible mid-patch only — default to live.
  std::vector<std::uint8_t> LiveRFlags() const {
    if constexpr (requires { base_->LiveRFlags(); }) {
      std::vector<std::uint8_t> live = base_->LiveRFlags();
      if (!live.empty() && live.size() < NumRCliques()) {
        live.resize(NumRCliques(), 1);
      }
      return live;
    } else {
      return {};
    }
  }

  /// Contiguous scan over the materialized co-member arena: one span of
  /// arity() ids per s-clique, no intersections, no id lookups. Once the
  /// arena has been patched, sentineled (dead) groups are skipped and
  /// patched-in groups are reported after the pristine ones.
  template <typename Fn>
  void ForEachSClique(CliqueId r, Fn&& fn) const {
    const CliqueId* base = co_members_.data();
    if (!patched_) {  // hot path: no sentinel checks, no overlay probe
      const std::uint64_t end = offsets_[r + 1];
      for (std::uint64_t p = offsets_[r]; p < end;
           p += static_cast<std::uint64_t>(arity_)) {
        fn(std::span<const CliqueId>(base + p,
                                     static_cast<std::size_t>(arity_)));
      }
      return;
    }
    if (static_cast<std::size_t>(r) + 1 < offsets_.size()) {
      const std::uint64_t end = offsets_[r + 1];
      for (std::uint64_t p = offsets_[r]; p < end;
           p += static_cast<std::uint64_t>(arity_)) {
        if (base[p] == kInvalidClique) continue;  // dead s-clique
        fn(std::span<const CliqueId>(base + p,
                                     static_cast<std::size_t>(arity_)));
      }
    }
    const auto it = overlay_.find(r);
    if (it != overlay_.end()) {
      const CliqueId* extra = it->second.data();
      for (std::size_t p = 0; p < it->second.size();
           p += static_cast<std::size_t>(arity_)) {
        fn(std::span<const CliqueId>(extra + p,
                                     static_cast<std::size_t>(arity_)));
      }
    }
  }

  /// Ids per s-clique (C(s,r) - 1).
  int arity() const { return arity_; }

  /// Applies a committed mutation in place instead of rebuilding the
  /// arena. Each s-clique is given as its full member list (arity() + 1
  /// r-clique ids, any order): for every live member r the co-member
  /// group of a `dead_s` clique is sentineled (pristine region) or erased
  /// (overlay), and a `born_s` clique's group is written into a free
  /// sentinel slot of r's pristine range when one exists, else appended
  /// to r's overlay. `dead_r` lists r-cliques that no longer exist (their
  /// whole lists are cleared; members of dead_s cliques that appear here
  /// are skipped); `num_r_cliques_now` grows the id space for patched-in
  /// r-cliques. Live per-r degrees (InitialDegrees) are maintained.
  void ApplyPatch(std::span<const std::vector<CliqueId>> dead_s,
                  std::span<const std::vector<CliqueId>> born_s,
                  std::span<const CliqueId> dead_r,
                  std::size_t num_r_cliques_now) {
    patched_ = true;
    if (num_r_cliques_now > degrees_.size()) {
      degrees_.resize(num_r_cliques_now, 0);
    }
    const std::size_t base_n = offsets_.size() - 1;
    const std::size_t arity = static_cast<std::size_t>(arity_);
    const std::unordered_set<CliqueId> dead_r_set(dead_r.begin(),
                                                  dead_r.end());
    for (CliqueId r : dead_r) {
      if (r < base_n) {
        for (std::uint64_t p = offsets_[r]; p < offsets_[r + 1]; ++p) {
          co_members_[p] = kInvalidClique;
        }
      }
      overlay_.erase(r);
      degrees_[r] = 0;
    }
    // Sorted co-member group of `members` minus r (groups are compared as
    // sets: build order and patch order may disagree on element order).
    std::vector<CliqueId> key, probe;
    const auto co_key = [&](const std::vector<CliqueId>& members,
                            CliqueId r, std::vector<CliqueId>* out) {
      out->clear();
      for (CliqueId c : members) {
        if (c != r) out->push_back(c);
      }
      std::sort(out->begin(), out->end());
    };
    for (const auto& members : dead_s) {
      for (CliqueId r : members) {
        if (dead_r_set.count(r) != 0) continue;  // list cleared wholesale
        co_key(members, r, &key);
        bool found = false;
        if (r < base_n) {
          for (std::uint64_t p = offsets_[r];
               !found && p < offsets_[r + 1]; p += arity) {
            if (co_members_[p] == kInvalidClique) continue;
            probe.assign(co_members_.begin() + static_cast<std::ptrdiff_t>(p),
                         co_members_.begin() +
                             static_cast<std::ptrdiff_t>(p + arity));
            std::sort(probe.begin(), probe.end());
            if (probe == key) {
              for (std::size_t i = 0; i < arity; ++i) {
                co_members_[p + i] = kInvalidClique;
              }
              found = true;
            }
          }
        }
        if (!found) {
          const auto it = overlay_.find(r);
          if (it != overlay_.end()) {
            auto& list = it->second;
            for (std::size_t p = 0; !found && p < list.size(); p += arity) {
              probe.assign(list.begin() + static_cast<std::ptrdiff_t>(p),
                           list.begin() +
                               static_cast<std::ptrdiff_t>(p + arity));
              std::sort(probe.begin(), probe.end());
              if (probe == key) {
                // Swap-erase the whole group block.
                std::copy(list.end() - static_cast<std::ptrdiff_t>(arity),
                          list.end(),
                          list.begin() + static_cast<std::ptrdiff_t>(p));
                list.resize(list.size() - arity);
                found = true;
              }
            }
          }
        }
        assert(found && "dead s-clique group not found in arena");
        (void)found;
        assert(degrees_[r] > 0);
        --degrees_[r];
      }
    }
    for (const auto& members : born_s) {
      for (CliqueId r : members) {
        // Reuse a sentinel slot of r's pristine range when one exists so
        // churn of the same region does not grow the overlay.
        bool placed = false;
        if (r < base_n) {
          for (std::uint64_t p = offsets_[r];
               !placed && p < offsets_[r + 1]; p += arity) {
            if (co_members_[p] != kInvalidClique) continue;
            std::size_t i = 0;
            for (CliqueId c : members) {
              if (c != r) co_members_[p + i++] = c;
            }
            placed = true;
          }
        }
        if (!placed) {
          auto& list = overlay_[r];
          for (CliqueId c : members) {
            if (c != r) list.push_back(c);
          }
        }
        ++degrees_[r];
      }
    }
  }

  /// Resident bytes of the materialized arena (including patch overlays).
  std::uint64_t MemoryBytes() const {
    std::uint64_t overlay_ids = 0;
    for (const auto& [r, list] : overlay_) overlay_ids += list.size();
    return internal::CsrArenaBytes(degrees_.size(),
                                   co_members_.size() /
                                       static_cast<std::uint64_t>(arity_),
                                   arity_) +
           overlay_ids * sizeof(CliqueId);
  }

  /// The wrapped on-the-fly space.
  const Space& base() const { return *base_; }

 private:
  CsrSpace(const Space* base, int arity) : base_(base), arity_(arity) {}

  void Adopt(internal::CsrArena arena) {
    degrees_ = std::move(arena.degrees);
    offsets_ = std::move(arena.offsets);
    co_members_ = std::move(arena.co_members);
  }

  const Space* base_;
  int arity_ = 1;
  std::vector<Degree> degrees_;  // live s-clique count per r-clique
  std::vector<std::uint64_t> offsets_;
  std::vector<CliqueId> co_members_;
  // Patch state (ApplyPatch): sentineled groups live in co_members_;
  // groups with no free slot spill here, keyed by r-clique id.
  bool patched_ = false;
  std::unordered_map<CliqueId, std::vector<CliqueId>> overlay_;
};

namespace internal {

/// Trait: is this space already a materialized adapter? Stops the engines
/// from re-wrapping.
template <typename T>
struct IsCsrSpace : std::false_type {};
template <typename S>
struct IsCsrSpace<CsrSpace<S>> : std::true_type {};

/// Auto-mode default per space. CoreSpace co-members are the adjacency list
/// itself (already one contiguous scan), so materializing buys nothing;
/// every other space pays intersections or id lookups per sweep and
/// defaults to materialized.
template <typename T>
struct MaterializeByDefault : std::true_type {};
template <>
struct MaterializeByDefault<CoreSpace> : std::false_type {};

/// Resolves the engines' materialization decision for a space type. An
/// explicit mode (kOn / kCompressed) always materializes; kAuto honors the
/// per-space default.
template <typename Space>
bool WantMaterialize(Materialize mode) {
  if (mode == Materialize::kOn || mode == Materialize::kCompressed) {
    return true;
  }
  if (mode == Materialize::kOff) return false;
  return MaterializeByDefault<Space>::value;
}

/// kOn ignores the budget; kAuto and kCompressed honor it.
inline std::uint64_t EffectiveBudget(Materialize mode,
                                     std::uint64_t budget_bytes) {
  return mode == Materialize::kOn
             ? std::numeric_limits<std::uint64_t>::max()
             : budget_bytes;
}

}  // namespace internal

}  // namespace nucleus

#endif  // NUCLEUS_CLIQUE_CSR_SPACE_H_
