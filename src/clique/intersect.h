// Sorted-list intersection helpers shared by the clique enumerators.
//
// Three regimes: when one range is much longer than the other
// (>= kGallopRatio x), the merge gallops — walk the short range and locate
// each element in the long one by exponential + binary search,
// O(small * log(large)) instead of O(small + large); comparable-size ranges
// of SIMD-worthy length use a block merge (all-pairs equality over 4/8-wide
// register blocks, advancing whichever block has the smaller max); tiny or
// SIMD-less inputs fall back to the classic scalar linear merge. All three
// emit the identical ascending sequence for the duplicate-free inputs every
// call site supplies (adjacency lists and canonical id lists), so kernel
// choice is observation-free.
//
// The SIMD kernels compile only on x86-64 GCC/clang and are excluded
// wholesale by -DNUCLEUS_NO_SIMD (the CI no-SIMD job); the AVX2 kernel is
// additionally gated at runtime behind a cached __builtin_cpu_supports
// check, with the SSE2-baseline 4-wide kernel as the universal x86-64
// fallback.
#ifndef NUCLEUS_CLIQUE_INTERSECT_H_
#define NUCLEUS_CLIQUE_INTERSECT_H_

#include <algorithm>
#include <span>
#include <utility>

#include "src/common/types.h"

#if defined(__x86_64__) && !defined(NUCLEUS_NO_SIMD) && \
    (defined(__GNUC__) || defined(__clang__))
#define NUCLEUS_SIMD_X86 1
#include <immintrin.h>
#endif

namespace nucleus {

namespace internal {

/// Size ratio above which intersection switches from the linear merge to
/// galloping. 16 keeps the crossover safely past the point where the
/// log-factor searches beat the linear scan.
inline constexpr std::size_t kGallopRatio = 16;

/// First index i >= from with a[i] >= x (a sorted ascending): exponential
/// probe doubling from `from`, then binary search inside the bracketed
/// window. O(log(i - from)).
inline std::size_t GallopLowerBound(std::span<const VertexId> a,
                                    std::size_t from, VertexId x) {
  std::size_t lo = from;
  std::size_t offset = 1;
  while (from + offset < a.size() && a[from + offset] < x) {
    lo = from + offset;
    offset <<= 1;
  }
  const std::size_t hi = std::min(from + offset, a.size());
  return static_cast<std::size_t>(
      std::lower_bound(a.begin() + static_cast<std::ptrdiff_t>(lo),
                       a.begin() + static_cast<std::ptrdiff_t>(hi), x) -
      a.begin());
}

/// Scalar linear merge, the reference all SIMD kernels must match bitwise.
/// Exposed for the equivalence tests and as the universal fallback.
template <typename Fn>
void ForEachCommonLinear(std::span<const VertexId> a,
                         std::span<const VertexId> b, Fn&& fn) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      fn(a[i]);
      ++i;
      ++j;
    }
  }
}

#if defined(NUCLEUS_SIMD_X86)

/// Minimum smaller-range length before the SIMD block merge beats the
/// scalar merge (block setup + match extraction amortize past this).
inline constexpr std::size_t kSimdMinLen = 8;
/// Match buffer the dispatcher hands the kernels. Kernels stop a step when
/// fewer than kSimdMaxWidth output slots remain, so a returned count above
/// kSimdBufLen - kSimdMaxWidth means "buffer full, call again".
inline constexpr std::size_t kSimdBufLen = 64;
inline constexpr std::size_t kSimdMaxWidth = 8;

inline bool CpuHasAvx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}

/// One SSE block-merge step (SSE2 baseline — always available on x86-64):
/// all-pairs equality of a 4-wide a-block against the 4 rotations of a
/// 4-wide b-block, matched a-lanes extracted in ascending order, then the
/// block with the smaller max advances (both on a tie). Runs until an
/// input has fewer than 4 elements left or fewer than kSimdMaxWidth output
/// slots remain; *ia/*ib are advanced past the consumed blocks.
inline std::size_t SimdIntersectStepSse(const VertexId* a, std::size_t na,
                                        const VertexId* b, std::size_t nb,
                                        std::size_t* ia, std::size_t* ib,
                                        VertexId* out, std::size_t cap) {
  std::size_t i = *ia, j = *ib, count = 0;
  while (i + 4 <= na && j + 4 <= nb && count + kSimdMaxWidth <= cap) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    __m128i eq = _mm_cmpeq_epi32(va, vb);
    eq = _mm_or_si128(eq,
                      _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x39)));
    eq = _mm_or_si128(eq,
                      _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x4e)));
    eq = _mm_or_si128(eq,
                      _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x93)));
    int mask = _mm_movemask_ps(_mm_castsi128_ps(eq));
    while (mask != 0) {
      const int k = __builtin_ctz(static_cast<unsigned>(mask));
      out[count++] = a[i + static_cast<std::size_t>(k)];
      mask &= mask - 1;
    }
    const VertexId amax = a[i + 3], bmax = b[j + 3];
    if (amax <= bmax) i += 4;
    if (bmax <= amax) j += 4;
  }
  *ia = i;
  *ib = j;
  return count;
}

/// AVX2 8-wide variant of the block merge: the b-block's 8 rotations come
/// from vpermd with a single rotate-by-one index vector applied
/// repeatedly. Compiled with a target attribute so the translation unit
/// itself needs no -mavx2; callers must check CpuHasAvx2().
__attribute__((target("avx2"))) inline std::size_t SimdIntersectStepAvx2(
    const VertexId* a, std::size_t na, const VertexId* b, std::size_t nb,
    std::size_t* ia, std::size_t* ib, VertexId* out, std::size_t cap) {
  std::size_t i = *ia, j = *ib, count = 0;
  const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  while (i + 8 <= na && j + 8 <= nb && count + kSimdMaxWidth <= cap) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    __m256i eq = _mm256_cmpeq_epi32(va, vb);
    for (int rot = 1; rot < 8; ++rot) {
      vb = _mm256_permutevar8x32_epi32(vb, rot1);
      eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, vb));
    }
    int mask = _mm256_movemask_ps(_mm256_castsi256_ps(eq));
    while (mask != 0) {
      const int k = __builtin_ctz(static_cast<unsigned>(mask));
      out[count++] = a[i + static_cast<std::size_t>(k)];
      mask &= mask - 1;
    }
    const VertexId amax = a[i + 7], bmax = b[j + 7];
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  *ia = i;
  *ib = j;
  return count;
}

/// Runtime dispatch between the two block-merge kernels.
inline std::size_t SimdIntersectStep(const VertexId* a, std::size_t na,
                                     const VertexId* b, std::size_t nb,
                                     std::size_t* ia, std::size_t* ib,
                                     VertexId* out, std::size_t cap) {
  if (CpuHasAvx2()) {
    return SimdIntersectStepAvx2(a, na, b, nb, ia, ib, out, cap);
  }
  return SimdIntersectStepSse(a, na, b, nb, ia, ib, out, cap);
}

/// SIMD-dispatched comparable-size intersection: block-merge steps flush
/// matches through fn, then the scalar merge finishes the sub-4/8-wide
/// tails. Inputs must be strictly ascending (duplicate-free) — true for
/// every call site; the output is then bitwise identical to
/// ForEachCommonLinear.
template <typename Fn>
void ForEachCommonSimd(std::span<const VertexId> a,
                       std::span<const VertexId> b, Fn&& fn) {
  VertexId buf[kSimdBufLen];
  std::size_t i = 0, j = 0;
  for (;;) {
    const std::size_t count = SimdIntersectStep(
        a.data(), a.size(), b.data(), b.size(), &i, &j, buf, kSimdBufLen);
    for (std::size_t k = 0; k < count; ++k) fn(buf[k]);
    if (count + kSimdMaxWidth <= kSimdBufLen) break;  // tails reached
  }
  ForEachCommonLinear(a.subspan(i), b.subspan(j), std::forward<Fn>(fn));
}

#endif  // NUCLEUS_SIMD_X86

}  // namespace internal

/// Galloping intersection: walks the SHORTER range and gallops through the
/// longer. Calls fn(x) for every common x, ascending — identical output to
/// the linear merge, picked automatically by ForEachCommon when the size
/// skew warrants it.
template <typename Fn>
void ForEachCommonGalloping(std::span<const VertexId> a,
                            std::span<const VertexId> b, Fn&& fn) {
  if (a.size() > b.size()) std::swap(a, b);
  std::size_t j = 0;
  for (const VertexId x : a) {
    j = internal::GallopLowerBound(b, j, x);
    if (j >= b.size()) return;
    if (b[j] == x) {
      fn(x);
      ++j;
    }
  }
}

/// Calls fn(x) for every x present in both sorted ranges (ascending).
/// Auto-dispatches: galloping when one range is >= kGallopRatio times the
/// other, the SIMD block merge for comparable SIMD-worthy sizes, the
/// scalar linear merge otherwise.
template <typename Fn>
void ForEachCommon(std::span<const VertexId> a, std::span<const VertexId> b,
                   Fn&& fn) {
  const std::size_t small = std::min(a.size(), b.size());
  const std::size_t large = std::max(a.size(), b.size());
  if (small == 0) return;
  if (large >= internal::kGallopRatio * small) {
    ForEachCommonGalloping(a, b, std::forward<Fn>(fn));
    return;
  }
#if defined(NUCLEUS_SIMD_X86)
  if (small >= internal::kSimdMinLen) {
    internal::ForEachCommonSimd(a, b, std::forward<Fn>(fn));
    return;
  }
#endif
  internal::ForEachCommonLinear(a, b, std::forward<Fn>(fn));
}

/// Number of common elements of two sorted ranges.
inline std::size_t CountCommon(std::span<const VertexId> a,
                               std::span<const VertexId> b) {
  std::size_t count = 0;
  ForEachCommon(a, b, [&](VertexId) { ++count; });
  return count;
}

/// Calls fn(x) for every x present in all three sorted ranges (ascending).
/// When the largest range dwarfs the smallest, the two smaller ranges are
/// intersected first and each hit is galloped into the largest.
template <typename Fn>
void ForEachCommon3(std::span<const VertexId> a, std::span<const VertexId> b,
                    std::span<const VertexId> c, Fn&& fn) {
  // Order a <= b <= c by size; intersection is symmetric and every path
  // emits ascending values, so reordering is observation-free.
  if (b.size() < a.size()) std::swap(a, b);
  if (c.size() < b.size()) std::swap(b, c);
  if (b.size() < a.size()) std::swap(a, b);
  if (a.empty()) return;
  if (c.size() >= internal::kGallopRatio * a.size()) {
    std::size_t k = 0;
    ForEachCommon(a, b, [&](VertexId x) {
      k = internal::GallopLowerBound(c, k, x);
      if (k < c.size() && c[k] == x) {
        fn(x);
        ++k;
      }
    });
    return;
  }
  std::size_t i = 0, j = 0, k = 0;
#if defined(NUCLEUS_SIMD_X86)
  if (a.size() >= internal::kSimdMinLen) {
    // Comparable sizes: (a n b) n c — SIMD block-merge a against b, then
    // linear-merge each match buffer into c from a rolling cursor.
    // Associativity keeps the ascending output identical to the 3-way
    // scalar merge (duplicate-free inputs); the scalar loop below finishes
    // the sub-block tails from (i, j, k).
    VertexId buf[internal::kSimdBufLen];
    for (;;) {
      const std::size_t count = internal::SimdIntersectStep(
          a.data(), a.size(), b.data(), b.size(), &i, &j, buf,
          internal::kSimdBufLen);
      for (std::size_t m = 0; m < count; ++m) {
        const VertexId x = buf[m];
        while (k < c.size() && c[k] < x) ++k;
        if (k == c.size()) return;
        if (c[k] == x) {
          fn(x);
          ++k;
        }
      }
      if (count + internal::kSimdMaxWidth <= internal::kSimdBufLen) break;
    }
  }
#endif
  while (i < a.size() && j < b.size() && k < c.size()) {
    const VertexId m = std::max({a[i], b[j], c[k]});
    if (a[i] < m) {
      ++i;
    } else if (b[j] < m) {
      ++j;
    } else if (c[k] < m) {
      ++k;
    } else {
      fn(m);
      ++i;
      ++j;
      ++k;
    }
  }
}

}  // namespace nucleus

#endif  // NUCLEUS_CLIQUE_INTERSECT_H_
