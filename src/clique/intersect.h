// Sorted-list intersection helpers shared by the clique enumerators.
#ifndef NUCLEUS_CLIQUE_INTERSECT_H_
#define NUCLEUS_CLIQUE_INTERSECT_H_

#include <span>

#include "src/common/types.h"

namespace nucleus {

/// Calls fn(x) for every x present in both sorted ranges.
template <typename Fn>
void ForEachCommon(std::span<const VertexId> a, std::span<const VertexId> b,
                   Fn&& fn) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      fn(a[i]);
      ++i;
      ++j;
    }
  }
}

/// Number of common elements of two sorted ranges.
inline std::size_t CountCommon(std::span<const VertexId> a,
                               std::span<const VertexId> b) {
  std::size_t count = 0;
  ForEachCommon(a, b, [&](VertexId) { ++count; });
  return count;
}

/// Calls fn(x) for every x present in all three sorted ranges.
template <typename Fn>
void ForEachCommon3(std::span<const VertexId> a, std::span<const VertexId> b,
                    std::span<const VertexId> c, Fn&& fn) {
  std::size_t i = 0, j = 0, k = 0;
  while (i < a.size() && j < b.size() && k < c.size()) {
    const VertexId m = std::max({a[i], b[j], c[k]});
    if (a[i] < m) {
      ++i;
    } else if (b[j] < m) {
      ++j;
    } else if (c[k] < m) {
      ++k;
    } else {
      fn(m);
      ++i;
      ++j;
      ++k;
    }
  }
}

}  // namespace nucleus

#endif  // NUCLEUS_CLIQUE_INTERSECT_H_
