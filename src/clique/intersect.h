// Sorted-list intersection helpers shared by the clique enumerators.
//
// Two regimes: comparable-size ranges use the classic linear merge; when
// one range is much longer than the other (>= kGallopRatio x), the merge
// switches to galloping — walk the short range and locate each element in
// the long one by exponential + binary search, O(small * log(large))
// instead of O(small + large). The skew is common in the on-the-fly
// ForEachSClique and delta-enumeration paths (a low-degree vertex
// intersected against a hub), where the linear merge wastes the scan of
// the hub's list.
#ifndef NUCLEUS_CLIQUE_INTERSECT_H_
#define NUCLEUS_CLIQUE_INTERSECT_H_

#include <algorithm>
#include <span>
#include <utility>

#include "src/common/types.h"

namespace nucleus {

namespace internal {

/// Size ratio above which intersection switches from the linear merge to
/// galloping. 16 keeps the crossover safely past the point where the
/// log-factor searches beat the linear scan.
inline constexpr std::size_t kGallopRatio = 16;

/// First index i >= from with a[i] >= x (a sorted ascending): exponential
/// probe doubling from `from`, then binary search inside the bracketed
/// window. O(log(i - from)).
inline std::size_t GallopLowerBound(std::span<const VertexId> a,
                                    std::size_t from, VertexId x) {
  std::size_t lo = from;
  std::size_t offset = 1;
  while (from + offset < a.size() && a[from + offset] < x) {
    lo = from + offset;
    offset <<= 1;
  }
  const std::size_t hi = std::min(from + offset, a.size());
  return static_cast<std::size_t>(
      std::lower_bound(a.begin() + static_cast<std::ptrdiff_t>(lo),
                       a.begin() + static_cast<std::ptrdiff_t>(hi), x) -
      a.begin());
}

}  // namespace internal

/// Galloping intersection: walks the SHORTER range and gallops through the
/// longer. Calls fn(x) for every common x, ascending — identical output to
/// the linear merge, picked automatically by ForEachCommon when the size
/// skew warrants it.
template <typename Fn>
void ForEachCommonGalloping(std::span<const VertexId> a,
                            std::span<const VertexId> b, Fn&& fn) {
  if (a.size() > b.size()) std::swap(a, b);
  std::size_t j = 0;
  for (const VertexId x : a) {
    j = internal::GallopLowerBound(b, j, x);
    if (j >= b.size()) return;
    if (b[j] == x) {
      fn(x);
      ++j;
    }
  }
}

/// Calls fn(x) for every x present in both sorted ranges (ascending).
/// Auto-dispatches to the galloping variant when one range is
/// >= kGallopRatio times the other.
template <typename Fn>
void ForEachCommon(std::span<const VertexId> a, std::span<const VertexId> b,
                   Fn&& fn) {
  const std::size_t small = std::min(a.size(), b.size());
  const std::size_t large = std::max(a.size(), b.size());
  if (small == 0) return;
  if (large >= internal::kGallopRatio * small) {
    ForEachCommonGalloping(a, b, std::forward<Fn>(fn));
    return;
  }
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      fn(a[i]);
      ++i;
      ++j;
    }
  }
}

/// Number of common elements of two sorted ranges.
inline std::size_t CountCommon(std::span<const VertexId> a,
                               std::span<const VertexId> b) {
  std::size_t count = 0;
  ForEachCommon(a, b, [&](VertexId) { ++count; });
  return count;
}

/// Calls fn(x) for every x present in all three sorted ranges (ascending).
/// When the largest range dwarfs the smallest, the two smaller ranges are
/// intersected first and each hit is galloped into the largest.
template <typename Fn>
void ForEachCommon3(std::span<const VertexId> a, std::span<const VertexId> b,
                    std::span<const VertexId> c, Fn&& fn) {
  // Order a <= b <= c by size; intersection is symmetric and every path
  // emits ascending values, so reordering is observation-free.
  if (b.size() < a.size()) std::swap(a, b);
  if (c.size() < b.size()) std::swap(b, c);
  if (b.size() < a.size()) std::swap(a, b);
  if (a.empty()) return;
  if (c.size() >= internal::kGallopRatio * a.size()) {
    std::size_t k = 0;
    ForEachCommon(a, b, [&](VertexId x) {
      k = internal::GallopLowerBound(c, k, x);
      if (k < c.size() && c[k] == x) {
        fn(x);
        ++k;
      }
    });
    return;
  }
  std::size_t i = 0, j = 0, k = 0;
  while (i < a.size() && j < b.size() && k < c.size()) {
    const VertexId m = std::max({a[i], b[j], c[k]});
    if (a[i] < m) {
      ++i;
    } else if (b[j] < m) {
      ++j;
    } else if (c[k] < m) {
      ++k;
    } else {
      fn(m);
      ++i;
      ++j;
      ++k;
    }
  }
}

}  // namespace nucleus

#endif  // NUCLEUS_CLIQUE_INTERSECT_H_
