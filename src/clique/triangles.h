// Triangle enumeration, per-edge triangle counting, and the triangle index
// that gives triangles dense ids (they are the r-cliques of the (3,4)
// decomposition).
#ifndef NUCLEUS_CLIQUE_TRIANGLES_H_
#define NUCLEUS_CLIQUE_TRIANGLES_H_

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/clique/edge_index.h"
#include "src/common/types.h"
#include "src/graph/graph.h"

namespace nucleus {

/// Calls fn(u, v, w) with u < v < w exactly once per triangle. Enumeration
/// is oriented by degree order internally, so total work is
/// O(sum over edges of min-degree) — the standard compact-forward bound.
void ForEachTriangle(const Graph& g,
                     const std::function<void(VertexId, VertexId, VertexId)>&
                         fn);

/// Total triangle count (Table 3 statistic).
Count CountTriangles(const Graph& g);

/// Per-edge triangle counts indexed by EdgeIndex ids; this is d_3, the
/// initial tau of the (2,3) decomposition. `threads` parallelizes over
/// edges (each edge's count is an independent adjacency intersection).
std::vector<Degree> TriangleCountsPerEdge(const Graph& g,
                                          const EdgeIndex& edges,
                                          int threads = 1);

/// Dense ids for triangles, stored as sorted (u < v < w) triples in
/// lexicographic order so ids are stable and lookup is a binary search.
class TriangleIndex {
 public:
  explicit TriangleIndex(const Graph& g);

  std::size_t NumTriangles() const { return triangles_.size(); }

  /// Vertices of triangle t, ascending.
  const std::array<VertexId, 3>& Vertices(TriangleId t) const {
    return triangles_[t];
  }

  /// Id of triangle {u, v, w} (any order), or kInvalidTriangle.
  TriangleId TriangleIdOf(VertexId u, VertexId v, VertexId w) const;

  /// All triangle ids containing edge (u, v): provided via callback to
  /// avoid allocation. Triangles containing an edge share its two vertices,
  /// so they are the common neighbors of u and v.
  void ForEachTriangleOfEdge(
      const Graph& g, VertexId u, VertexId v,
      const std::function<void(TriangleId, VertexId)>& fn) const;

 private:
  std::vector<std::array<VertexId, 3>> triangles_;
};

}  // namespace nucleus

#endif  // NUCLEUS_CLIQUE_TRIANGLES_H_
