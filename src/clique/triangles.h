// Triangle enumeration, per-edge triangle counting, and the triangle index
// that gives triangles dense ids (they are the r-cliques of the (3,4)
// decomposition).
//
// TriangleIndex and EdgeTriangleCsr are *patchable* the same way EdgeIndex
// is: ApplyDelta applies a committed mutation's dead/born triangle sets in
// place (tombstones + appended ids + per-edge overlay lists) so the session
// never pays a full re-enumeration for a small commit. NumTriangles() is
// the id-space size; NumLiveTriangles() counts triangles actually present.
#ifndef NUCLEUS_CLIQUE_TRIANGLES_H_
#define NUCLEUS_CLIQUE_TRIANGLES_H_

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/clique/edge_index.h"
#include "src/common/cancel.h"
#include "src/common/types.h"
#include "src/graph/graph.h"

namespace nucleus {

/// Calls fn(u, v, w) with u < v < w exactly once per triangle. Enumeration
/// is oriented by degree order internally, so total work is
/// O(sum over edges of min-degree) — the standard compact-forward bound.
void ForEachTriangle(const Graph& g,
                     const std::function<void(VertexId, VertexId, VertexId)>&
                         fn);

/// Parallel driver: partitions vertices into <= threads contiguous blocks
/// and calls fn(block, u, v, w) with u < v < w exactly once per triangle,
/// from the block's worker thread. fn must be safe to call concurrently for
/// distinct blocks (e.g. append to per-block buffers, or use atomics).
/// A stoppable `ctl` makes the enumeration abandonable mid-stream: the
/// caller must check ctl.ShouldStop() afterwards and discard the partial
/// output when it reports true.
void ForEachTriangleBlocks(
    const Graph& g, int threads,
    const std::function<void(int, VertexId, VertexId, VertexId)>& fn,
    RunControl ctl = {});

/// Total triangle count (Table 3 statistic). `threads` parallelizes over
/// vertices with per-thread accumulation. A stopped run undercounts; the
/// caller checks ctl.
Count CountTriangles(const Graph& g, int threads = 1, RunControl ctl = {});

/// Per-edge triangle counts indexed by EdgeIndex ids; this is d_3, the
/// initial tau of the (2,3) decomposition. `threads` parallelizes over
/// edges (each edge's count is an independent adjacency intersection).
/// Tombstoned edge ids count 0.
std::vector<Degree> TriangleCountsPerEdge(const Graph& g,
                                          const EdgeIndex& edges,
                                          int threads = 1);

/// Dense ids for triangles, stored as sorted (u < v < w) triples. Pristine
/// ids are in lexicographic order so lookup is a binary search; ids patched
/// in by ApplyDelta append past the pristine range and resolve through an
/// overlay hash map.
class TriangleIndex {
 public:
  /// Builds the index with a counting pre-pass (one exact allocation, no
  /// push_back growth); `threads` parallelizes both the count and the fill.
  /// A stoppable `ctl` makes the build abandonable: aborted() then reports
  /// true, the index is empty, and the caller must discard it.
  explicit TriangleIndex(const Graph& g, int threads = 1, RunControl ctl = {});

  /// True when a stoppable build was cancelled / ran out of deadline; the
  /// index holds no triangles and must not be installed or queried.
  bool aborted() const { return aborted_; }

  /// Size of the id space: every id in [0, NumTriangles()) is addressable.
  /// Exceeds NumLiveTriangles() by the tombstones once removals patched in.
  std::size_t NumTriangles() const { return triangles_.size(); }

  /// Number of live (present) triangles.
  std::size_t NumLiveTriangles() const { return num_live_; }

  /// False once triangle t was destroyed by ApplyDelta (until the same
  /// triple is re-created, which revives the id).
  bool IsLive(TriangleId t) const { return dead_.empty() || dead_[t] == 0; }

  /// Tombstoned fraction of the id space; the session's compaction trigger.
  double DeadFraction() const {
    return triangles_.empty()
               ? 0.0
               : static_cast<double>(triangles_.size() - num_live_) /
                     static_cast<double>(triangles_.size());
  }

  /// Vertices of triangle t, ascending. Valid for tombstoned ids too.
  const std::array<VertexId, 3>& Vertices(TriangleId t) const {
    return triangles_[t];
  }

  /// Id of live triangle {u, v, w} (any order), or kInvalidTriangle.
  TriangleId TriangleIdOf(VertexId u, VertexId v, VertexId w) const;

  /// All triangle ids containing edge (u, v): provided via callback to
  /// avoid allocation. Triangles containing an edge share its two vertices,
  /// so they are the common neighbors of u and v. Each hit costs one
  /// intersection step plus an id lookup; build an EdgeTriangleCsr when
  /// querying many edges repeatedly.
  void ForEachTriangleOfEdge(
      const Graph& g, VertexId u, VertexId v,
      const std::function<void(TriangleId, VertexId)>& fn) const;

  /// Applies a committed mutation's triangle delta in place: tombstones
  /// every `dead` triple and assigns ids to every `born` triple (reviving
  /// a tombstone of the same triple, else appending a fresh id). Triples
  /// must be vertex-sorted and deduplicated (delta.h produces both).
  /// Returns the ids assigned to `born`, in order.
  std::vector<TriangleId> ApplyDelta(
      std::span<const std::array<VertexId, 3>> dead,
      std::span<const std::array<VertexId, 3>> born);

 private:
  struct TripleHash {
    std::size_t operator()(const std::array<VertexId, 3>& t) const {
      std::uint64_t h = t[0];
      h = h * 0x9e3779b97f4a7c15ULL ^ t[1];
      h = h * 0x9e3779b97f4a7c15ULL ^ t[2];
      return static_cast<std::size_t>(h ^ (h >> 32));
    }
  };
  // Binary search in the pristine sorted range; ignores liveness.
  TriangleId BaseIdOf(const std::array<VertexId, 3>& key) const;

  std::vector<std::array<VertexId, 3>> triangles_;
  std::size_t base_triangles_ = 0;  // triangles_.size() at construction
  bool aborted_ = false;            // stoppable build stopped mid-stream
  // Patch state; all empty until the first ApplyDelta.
  std::vector<std::uint8_t> dead_;
  std::unordered_map<std::array<VertexId, 3>, TriangleId, TripleHash>
      overlay_;
  std::size_t num_live_ = 0;
};

/// Per-edge triangle adjacency materialized as a CSR over edge ids: for
/// each edge, the triangles containing it together with the opposite
/// vertex. Built in two parallel passes over the TriangleIndex; lookups are
/// then a flat scan with no re-intersection and no binary searches.
/// Patchable: ApplyDelta sentinels dead entries in place and appends born
/// entries to per-edge overlay lists.
class EdgeTriangleCsr {
 public:
  /// A stoppable `ctl` makes the build abandonable: aborted() then reports
  /// true and the CSR must be discarded.
  EdgeTriangleCsr(const EdgeIndex& edges, const TriangleIndex& tris,
                  int threads = 1, RunControl ctl = {});

  /// True when a stoppable build was stopped mid-pass.
  bool aborted() const { return aborted_; }

  /// Size of the edge-id space covered (grows when a patch brings new
  /// edge ids).
  std::size_t NumEdges() const { return num_edges_; }

  /// Number of live triangles containing edge e (== d_3[e]; 0 for a
  /// tombstoned edge).
  Degree TriangleCount(EdgeId e) const {
    if (!counts_.empty()) return e < counts_.size() ? counts_[e] : 0;
    return static_cast<Degree>(offsets_[e + 1] - offsets_[e]);
  }

  /// Calls fn(t, w) for every live triangle t containing e, with w the
  /// vertex of t opposite e. Pristine entries come in ascending id order;
  /// patched-in entries follow in patch order.
  template <typename Fn>
  void ForEachTriangleOfEdge(EdgeId e, Fn&& fn) const {
    if (static_cast<std::size_t>(e) + 1 < offsets_.size()) {
      for (std::uint64_t p = offsets_[e]; p < offsets_[e + 1]; ++p) {
        if (entries_[p].first == kInvalidTriangle) continue;  // dead
        fn(entries_[p].first, entries_[p].second);
      }
    }
    if (!overlay_.empty()) {
      const auto it = overlay_.find(e);
      if (it != overlay_.end()) {
        for (const auto& [t, w] : it->second) fn(t, w);
      }
    }
  }

  /// One patched triangle: its id, member edge ids, and per-member
  /// opposite vertex (entry i is the edge not containing vertices[i]'s
  /// opposite — i.e. opposite[i] completes edges[i] into the triangle).
  struct TrianglePatch {
    TriangleId id;
    std::array<EdgeId, 3> edges;
    std::array<VertexId, 3> opposite;
  };

  /// Applies a committed mutation in place: removes `dead` triangles'
  /// entries (sentineled in the pristine region, erased from overlays),
  /// appends `born` triangles' entries, clears the lists of `dead_edges`
  /// wholesale, and grows the edge-id space to `num_edge_ids`.
  void ApplyDelta(std::span<const TrianglePatch> dead,
                  std::span<const TrianglePatch> born,
                  std::span<const EdgeId> dead_edges,
                  std::size_t num_edge_ids);

 private:
  void EnsureCounts();

  std::vector<std::uint64_t> offsets_;
  std::vector<std::pair<TriangleId, VertexId>> entries_;
  std::size_t num_edges_ = 0;
  bool aborted_ = false;
  // Patch state; empty until the first ApplyDelta. counts_ materializes
  // live per-edge counts once offsets_ diffs stop being the truth.
  std::vector<Degree> counts_;
  std::unordered_map<EdgeId, std::vector<std::pair<TriangleId, VertexId>>>
      overlay_;
};

}  // namespace nucleus

#endif  // NUCLEUS_CLIQUE_TRIANGLES_H_
