// Triangle enumeration, per-edge triangle counting, and the triangle index
// that gives triangles dense ids (they are the r-cliques of the (3,4)
// decomposition).
#ifndef NUCLEUS_CLIQUE_TRIANGLES_H_
#define NUCLEUS_CLIQUE_TRIANGLES_H_

#include <array>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/clique/edge_index.h"
#include "src/common/types.h"
#include "src/graph/graph.h"

namespace nucleus {

/// Calls fn(u, v, w) with u < v < w exactly once per triangle. Enumeration
/// is oriented by degree order internally, so total work is
/// O(sum over edges of min-degree) — the standard compact-forward bound.
void ForEachTriangle(const Graph& g,
                     const std::function<void(VertexId, VertexId, VertexId)>&
                         fn);

/// Parallel driver: partitions vertices into <= threads contiguous blocks
/// and calls fn(block, u, v, w) with u < v < w exactly once per triangle,
/// from the block's worker thread. fn must be safe to call concurrently for
/// distinct blocks (e.g. append to per-block buffers, or use atomics).
void ForEachTriangleBlocks(
    const Graph& g, int threads,
    const std::function<void(int, VertexId, VertexId, VertexId)>& fn);

/// Total triangle count (Table 3 statistic). `threads` parallelizes over
/// vertices with per-thread accumulation.
Count CountTriangles(const Graph& g, int threads = 1);

/// Per-edge triangle counts indexed by EdgeIndex ids; this is d_3, the
/// initial tau of the (2,3) decomposition. `threads` parallelizes over
/// edges (each edge's count is an independent adjacency intersection).
std::vector<Degree> TriangleCountsPerEdge(const Graph& g,
                                          const EdgeIndex& edges,
                                          int threads = 1);

/// Dense ids for triangles, stored as sorted (u < v < w) triples in
/// lexicographic order so ids are stable and lookup is a binary search.
class TriangleIndex {
 public:
  /// Builds the index with a counting pre-pass (one exact allocation, no
  /// push_back growth); `threads` parallelizes both the count and the fill.
  explicit TriangleIndex(const Graph& g, int threads = 1);

  std::size_t NumTriangles() const { return triangles_.size(); }

  /// Vertices of triangle t, ascending.
  const std::array<VertexId, 3>& Vertices(TriangleId t) const {
    return triangles_[t];
  }

  /// Id of triangle {u, v, w} (any order), or kInvalidTriangle.
  TriangleId TriangleIdOf(VertexId u, VertexId v, VertexId w) const;

  /// All triangle ids containing edge (u, v): provided via callback to
  /// avoid allocation. Triangles containing an edge share its two vertices,
  /// so they are the common neighbors of u and v. Each hit costs one
  /// intersection step plus a binary-search id lookup; build an
  /// EdgeTriangleCsr when querying many edges repeatedly.
  void ForEachTriangleOfEdge(
      const Graph& g, VertexId u, VertexId v,
      const std::function<void(TriangleId, VertexId)>& fn) const;

 private:
  std::vector<std::array<VertexId, 3>> triangles_;
};

/// Per-edge triangle adjacency materialized as a CSR over edge ids: for
/// each edge, the triangles containing it together with the opposite
/// vertex. Built in two parallel passes over the TriangleIndex; lookups are
/// then a flat scan with no re-intersection and no binary searches.
class EdgeTriangleCsr {
 public:
  EdgeTriangleCsr(const EdgeIndex& edges, const TriangleIndex& tris,
                  int threads = 1);

  std::size_t NumEdges() const { return offsets_.size() - 1; }

  /// Number of triangles containing edge e (== d_3[e]).
  Degree TriangleCount(EdgeId e) const {
    return static_cast<Degree>(offsets_[e + 1] - offsets_[e]);
  }

  /// Calls fn(t, w) for every triangle t containing e, with w the vertex of
  /// t opposite e. Triangles are reported in ascending id order.
  template <typename Fn>
  void ForEachTriangleOfEdge(EdgeId e, Fn&& fn) const {
    for (std::uint64_t p = offsets_[e]; p < offsets_[e + 1]; ++p) {
      fn(entries_[p].first, entries_[p].second);
    }
  }

 private:
  std::vector<std::uint64_t> offsets_;
  std::vector<std::pair<TriangleId, VertexId>> entries_;
};

}  // namespace nucleus

#endif  // NUCLEUS_CLIQUE_TRIANGLES_H_
