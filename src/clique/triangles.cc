#include "src/clique/triangles.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "src/clique/intersect.h"
#include "src/common/parallel.h"
#include "src/graph/ordering.h"

namespace nucleus {

namespace {

// Branchless ascending sort of a 3-vertex key: min/max compile to
// conditional moves and the XOR identity recovers the middle element, so
// per-lookup cost has no data-dependent branches (the old std::sort did).
inline std::array<VertexId, 3> SortedTriple(VertexId u, VertexId v,
                                            VertexId w) {
  const VertexId lo = std::min(std::min(u, v), w);
  const VertexId hi = std::max(std::max(u, v), w);
  const VertexId mid = u ^ v ^ w ^ lo ^ hi;
  return {lo, mid, hi};
}

// Shared blocked driver: calls fn(block, a, b, c) once per triangle with
// vertices in rank order (NOT id order); blocks partition the vertex range.
// A stoppable ctl is polled once per few source vertices; on stop every
// block abandons its remaining range (output is partial — callers check
// ctl afterwards and discard).
template <typename Fn>
void BlockedTriangles(const Graph& g, const OrientedGraph& oriented,
                      int threads, Fn&& fn, RunControl ctl = {}) {
  const bool can_stop = ctl.CanStop();
  AbortFlag abort;
  ParallelBlocks(g.NumVertices(), threads,
                 [&](int block, std::size_t begin, std::size_t end) {
                   CheckEvery<16> poll;
                   for (std::size_t v = begin; v < end; ++v) {
                     if (can_stop && poll.Due() && PollStop(ctl, abort)) {
                       return;
                     }
                     const auto out_v =
                         oriented.OutNeighbors(static_cast<VertexId>(v));
                     for (std::size_t i = 0; i < out_v.size(); ++i) {
                       const VertexId w = out_v[i];
                       ForEachCommon(out_v, oriented.OutNeighbors(w),
                                     [&](VertexId x) {
                                       fn(block, static_cast<VertexId>(v), w,
                                          x);
                                     });
                     }
                   }
                 });
}

}  // namespace

void ForEachTriangle(
    const Graph& g,
    const std::function<void(VertexId, VertexId, VertexId)>& fn) {
  const auto ranks = DegreeOrderRanks(g);
  const OrientedGraph oriented(g, ranks);
  BlockedTriangles(g, oriented, 1,
                   [&](int, VertexId a, VertexId b, VertexId c) {
                     const auto t = SortedTriple(a, b, c);
                     fn(t[0], t[1], t[2]);
                   });
}

void ForEachTriangleBlocks(
    const Graph& g, int threads,
    const std::function<void(int, VertexId, VertexId, VertexId)>& fn,
    RunControl ctl) {
  const auto ranks = DegreeOrderRanks(g);
  const OrientedGraph oriented(g, ranks);
  BlockedTriangles(
      g, oriented, threads,
      [&](int block, VertexId a, VertexId b, VertexId c) {
        const auto t = SortedTriple(a, b, c);
        fn(block, t[0], t[1], t[2]);
      },
      ctl);
}

Count CountTriangles(const Graph& g, int threads, RunControl ctl) {
  const auto ranks = DegreeOrderRanks(g);
  const OrientedGraph oriented(g, ranks);
  const int t = threads <= 1 ? 1 : threads;
  std::vector<Count> partial(t, 0);
  BlockedTriangles(
      g, oriented, t,
      [&](int block, VertexId, VertexId, VertexId) { ++partial[block]; },
      ctl);
  Count total = 0;
  for (Count c : partial) total += c;
  return total;
}

std::vector<Degree> TriangleCountsPerEdge(const Graph& g,
                                          const EdgeIndex& edges,
                                          int threads) {
  std::vector<Degree> counts(edges.NumEdges(), 0);
  ParallelFor(edges.NumEdges(), threads, [&](std::size_t e) {
    if (!edges.IsLive(static_cast<EdgeId>(e))) return;  // tombstone: d_3 = 0
    const auto [u, v] = edges.Endpoints(static_cast<EdgeId>(e));
    counts[e] =
        static_cast<Degree>(CountCommon(g.Neighbors(u), g.Neighbors(v)));
  });
  return counts;
}

TriangleIndex::TriangleIndex(const Graph& g, int threads, RunControl ctl) {
  const auto ranks = DegreeOrderRanks(g);
  const OrientedGraph oriented(g, ranks);
  const int t = threads <= 1 ? 1 : threads;
  // Counting pre-pass: exact per-block totals, so the triple array is
  // allocated once at its final size (the old ctor grew a vector through
  // repeated reallocation).
  std::vector<std::size_t> block_count(t, 0);
  BlockedTriangles(
      g, oriented, t,
      [&](int block, VertexId, VertexId, VertexId) { ++block_count[block]; },
      ctl);
  if (ctl.CanStop() && ctl.ShouldStop()) {
    aborted_ = true;
    return;
  }
  std::vector<std::size_t> block_offset(t + 1, 0);
  for (int b = 0; b < t; ++b) {
    block_offset[b + 1] = block_offset[b] + block_count[b];
  }
  triangles_.resize(block_offset[t]);
  // Fill pass: ParallelBlocks partitions deterministically for fixed (n,
  // threads), so each block writes exactly its counted slice.
  std::vector<std::size_t> cursor(block_offset.begin(),
                                  block_offset.end() - 1);
  BlockedTriangles(
      g, oriented, t,
      [&](int block, VertexId a, VertexId b, VertexId c) {
        triangles_[cursor[block]++] = SortedTriple(a, b, c);
      },
      ctl);
  if (ctl.CanStop() && ctl.ShouldStop()) {
    triangles_.clear();
    aborted_ = true;
    return;
  }
  std::sort(triangles_.begin(), triangles_.end());
  base_triangles_ = triangles_.size();
  num_live_ = triangles_.size();
}

TriangleId TriangleIndex::BaseIdOf(
    const std::array<VertexId, 3>& key) const {
  const auto end =
      triangles_.begin() + static_cast<std::ptrdiff_t>(base_triangles_);
  const auto it = std::lower_bound(triangles_.begin(), end, key);
  if (it == end || *it != key) return kInvalidTriangle;
  return static_cast<TriangleId>(it - triangles_.begin());
}

TriangleId TriangleIndex::TriangleIdOf(VertexId u, VertexId v,
                                       VertexId w) const {
  const std::array<VertexId, 3> key = SortedTriple(u, v, w);
  const TriangleId base = BaseIdOf(key);
  if (base != kInvalidTriangle) {
    return IsLive(base) ? base : kInvalidTriangle;
  }
  if (!overlay_.empty()) {
    const auto it = overlay_.find(key);
    if (it != overlay_.end() && IsLive(it->second)) return it->second;
  }
  return kInvalidTriangle;
}

std::vector<TriangleId> TriangleIndex::ApplyDelta(
    std::span<const std::array<VertexId, 3>> dead,
    std::span<const std::array<VertexId, 3>> born) {
  if (dead_.empty()) dead_.assign(triangles_.size(), 0);
  for (const auto& key : dead) {
    TriangleId id = BaseIdOf(key);
    if (id == kInvalidTriangle) {
      const auto it = overlay_.find(key);
      assert(it != overlay_.end() && "dead triangle has no id");
      id = it->second;
    }
    assert(dead_[id] == 0 && "dead triangle already tombstoned");
    dead_[id] = 1;
    --num_live_;
  }
  std::vector<TriangleId> ids;
  ids.reserve(born.size());
  for (const auto& key : born) {
    TriangleId id = BaseIdOf(key);
    if (id == kInvalidTriangle) {
      const auto it = overlay_.find(key);
      if (it != overlay_.end()) {
        id = it->second;  // revive a patched-in triple's tombstone
      } else {
        id = static_cast<TriangleId>(triangles_.size());
        triangles_.push_back(key);
        dead_.push_back(1);  // flipped live below
        overlay_.emplace(key, id);
      }
    }
    assert(dead_[id] == 1 && "born triangle already live");
    dead_[id] = 0;
    ++num_live_;
    ids.push_back(id);
  }
  return ids;
}

void TriangleIndex::ForEachTriangleOfEdge(
    const Graph& g, VertexId u, VertexId v,
    const std::function<void(TriangleId, VertexId)>& fn) const {
  ForEachCommon(g.Neighbors(u), g.Neighbors(v), [&](VertexId w) {
    const TriangleId t = TriangleIdOf(u, v, w);
    fn(t, w);
  });
}

EdgeTriangleCsr::EdgeTriangleCsr(const EdgeIndex& edges,
                                 const TriangleIndex& tris, int threads,
                                 RunControl ctl) {
  const std::size_t m = edges.NumEdges();
  const std::size_t nt = tris.NumTriangles();
  num_edges_ = m;
  const bool can_stop = ctl.CanStop();
  AbortFlag abort;
  // Pass 1: per-edge triangle counts (relaxed atomic increments; each
  // triangle touches its three edges). Tombstoned triangles of a patched
  // index contribute nothing.
  std::vector<Degree> counts(m, 0);
  ParallelFor(nt, threads, [&](std::size_t ti) {
    if (can_stop && PollStopAmortized(ctl, abort)) return;
    if (!tris.IsLive(static_cast<TriangleId>(ti))) return;
    const auto& v = tris.Vertices(static_cast<TriangleId>(ti));
    const EdgeId ids[3] = {edges.EdgeIdOf(v[0], v[1]),
                           edges.EdgeIdOf(v[0], v[2]),
                           edges.EdgeIdOf(v[1], v[2])};
    for (EdgeId e : ids) {
      std::atomic_ref<Degree>(counts[e]).fetch_add(
          1, std::memory_order_relaxed);
    }
  });
  if (can_stop && ctl.ShouldStop()) {
    aborted_ = true;
    return;
  }
  offsets_.assign(m + 1, 0);
  for (std::size_t e = 0; e < m; ++e) {
    offsets_[e + 1] = offsets_[e] + counts[e];
  }
  entries_.resize(offsets_[m]);
  // Pass 2: scatter through per-edge atomic cursors.
  std::vector<std::uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  ParallelFor(nt, threads, [&](std::size_t ti) {
    if (can_stop && PollStopAmortized(ctl, abort)) return;
    if (!tris.IsLive(static_cast<TriangleId>(ti))) return;
    const auto& v = tris.Vertices(static_cast<TriangleId>(ti));
    const EdgeId ids[3] = {edges.EdgeIdOf(v[0], v[1]),
                           edges.EdgeIdOf(v[0], v[2]),
                           edges.EdgeIdOf(v[1], v[2])};
    const VertexId opposite[3] = {v[2], v[1], v[0]};
    for (int i = 0; i < 3; ++i) {
      const std::uint64_t pos =
          std::atomic_ref<std::uint64_t>(cursor[ids[i]])
              .fetch_add(1, std::memory_order_relaxed);
      entries_[pos] = {static_cast<TriangleId>(ti), opposite[i]};
    }
  });
  if (can_stop && ctl.ShouldStop()) {
    offsets_.clear();
    entries_.clear();
    aborted_ = true;
    return;
  }
  // Deterministic ascending-id order within each edge regardless of thread
  // interleaving.
  ParallelFor(m, threads, [&](std::size_t e) {
    std::sort(entries_.begin() + static_cast<std::ptrdiff_t>(offsets_[e]),
              entries_.begin() + static_cast<std::ptrdiff_t>(offsets_[e + 1]));
  });
}

void EdgeTriangleCsr::EnsureCounts() {
  if (!counts_.empty()) return;
  counts_.resize(num_edges_);
  for (std::size_t e = 0; e + 1 < offsets_.size(); ++e) {
    counts_[e] = static_cast<Degree>(offsets_[e + 1] - offsets_[e]);
  }
}

void EdgeTriangleCsr::ApplyDelta(std::span<const TrianglePatch> dead,
                                 std::span<const TrianglePatch> born,
                                 std::span<const EdgeId> dead_edges,
                                 std::size_t num_edge_ids) {
  num_edges_ = std::max(num_edges_, num_edge_ids);
  EnsureCounts();
  counts_.resize(num_edges_, 0);
  const std::size_t base_m = offsets_.size() - 1;
  // Removes the (t, *) entry from edge e's list: sentineled in place in
  // the pristine region, swap-erased from the overlay.
  const auto remove_entry = [&](EdgeId e, TriangleId t) {
    if (e < base_m) {
      for (std::uint64_t p = offsets_[e]; p < offsets_[e + 1]; ++p) {
        if (entries_[p].first == t) {
          entries_[p] = {kInvalidTriangle, 0};
          --counts_[e];
          return;
        }
      }
    }
    const auto it = overlay_.find(e);
    if (it != overlay_.end()) {
      auto& list = it->second;
      for (std::size_t i = 0; i < list.size(); ++i) {
        if (list[i].first == t) {
          list[i] = list.back();
          list.pop_back();
          --counts_[e];
          return;
        }
      }
    }
    assert(false && "dead triangle entry not found in edge list");
  };
  for (const auto& tp : dead) {
    for (int i = 0; i < 3; ++i) {
      // Member ids are resolved by the caller BEFORE tombstoning, so
      // edges removed in the same commit still carry valid ids here
      // (their whole lists are additionally cleared via dead_edges
      // below); the guard only skips ids a caller could not resolve.
      if (tp.edges[i] == kInvalidEdge) continue;
      remove_entry(tp.edges[i], tp.id);
    }
  }
  for (EdgeId e : dead_edges) {
    if (e < base_m) {
      for (std::uint64_t p = offsets_[e]; p < offsets_[e + 1]; ++p) {
        entries_[p] = {kInvalidTriangle, 0};
      }
    }
    overlay_.erase(e);
    counts_[e] = 0;
  }
  for (const auto& tp : born) {
    for (int i = 0; i < 3; ++i) {
      assert(tp.edges[i] != kInvalidEdge);
      overlay_[tp.edges[i]].emplace_back(tp.id, tp.opposite[i]);
      ++counts_[tp.edges[i]];
    }
  }
}

}  // namespace nucleus
