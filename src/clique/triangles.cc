#include "src/clique/triangles.h"

#include <algorithm>
#include <atomic>

#include "src/clique/intersect.h"
#include "src/common/parallel.h"
#include "src/graph/ordering.h"

namespace nucleus {

void ForEachTriangle(
    const Graph& g,
    const std::function<void(VertexId, VertexId, VertexId)>& fn) {
  const auto ranks = DegreeOrderRanks(g);
  const OrientedGraph oriented(g, ranks);
  const std::size_t n = g.NumVertices();
  for (VertexId v = 0; v < n; ++v) {
    const auto out_v = oriented.OutNeighbors(v);
    for (std::size_t i = 0; i < out_v.size(); ++i) {
      const VertexId w = out_v[i];
      ForEachCommon(out_v, oriented.OutNeighbors(w), [&](VertexId x) {
        VertexId t[3] = {v, w, x};
        std::sort(t, t + 3);
        fn(t[0], t[1], t[2]);
      });
    }
  }
}

Count CountTriangles(const Graph& g) {
  const auto ranks = DegreeOrderRanks(g);
  const OrientedGraph oriented(g, ranks);
  Count total = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const auto out_v = oriented.OutNeighbors(v);
    for (VertexId w : out_v) {
      total += CountCommon(out_v, oriented.OutNeighbors(w));
    }
  }
  return total;
}

std::vector<Degree> TriangleCountsPerEdge(const Graph& g,
                                          const EdgeIndex& edges,
                                          int threads) {
  std::vector<Degree> counts(edges.NumEdges(), 0);
  ParallelFor(edges.NumEdges(), threads, [&](std::size_t e) {
    const auto [u, v] = edges.Endpoints(static_cast<EdgeId>(e));
    counts[e] =
        static_cast<Degree>(CountCommon(g.Neighbors(u), g.Neighbors(v)));
  });
  return counts;
}

TriangleIndex::TriangleIndex(const Graph& g) {
  ForEachTriangle(g, [&](VertexId u, VertexId v, VertexId w) {
    triangles_.push_back({u, v, w});
  });
  std::sort(triangles_.begin(), triangles_.end());
}

TriangleId TriangleIndex::TriangleIdOf(VertexId u, VertexId v,
                                       VertexId w) const {
  std::array<VertexId, 3> key = {u, v, w};
  std::sort(key.begin(), key.end());
  auto it = std::lower_bound(triangles_.begin(), triangles_.end(), key);
  if (it == triangles_.end() || *it != key) return kInvalidTriangle;
  return static_cast<TriangleId>(it - triangles_.begin());
}

void TriangleIndex::ForEachTriangleOfEdge(
    const Graph& g, VertexId u, VertexId v,
    const std::function<void(TriangleId, VertexId)>& fn) const {
  ForEachCommon(g.Neighbors(u), g.Neighbors(v), [&](VertexId w) {
    const TriangleId t = TriangleIdOf(u, v, w);
    fn(t, w);
  });
}

}  // namespace nucleus
