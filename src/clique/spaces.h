// The (r,s) "clique spaces": uniform, non-virtual views that let one generic
// engine implement the k-core (1,2), k-truss (2,3) and (3,4)-nucleus
// decompositions. A space knows (a) how many r-cliques exist, (b) their
// initial S-degrees, and (c) how to enumerate, for a given r-clique R, every
// s-clique containing R as the list of R's co-members in that s-clique.
// Following Section 5 of the paper, s-clique participation is computed
// on the fly from adjacency intersections; no r-clique/s-clique hypergraph
// is ever materialized.
#ifndef NUCLEUS_CLIQUE_SPACES_H_
#define NUCLEUS_CLIQUE_SPACES_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/clique/edge_index.h"
#include "src/clique/four_cliques.h"
#include "src/clique/intersect.h"
#include "src/clique/triangles.h"
#include "src/common/types.h"
#include "src/graph/graph.h"

namespace nucleus {

/// (r=1, s=2): r-cliques are vertices, s-cliques are edges. The co-member of
/// a vertex v in an edge {v, u} is u.
class CoreSpace {
 public:
  explicit CoreSpace(const Graph& g) : g_(&g) {}

  std::size_t NumRCliques() const { return g_->NumVertices(); }

  /// Vertices are never tombstoned (the graph is dense-relabel by
  /// construction), so every id is live.
  std::vector<std::uint8_t> LiveRFlags() const { return {}; }

  /// Single-id form of LiveRFlags for point queries.
  bool IsLiveR(CliqueId) const { return true; }

  /// d_2: vertex degrees.
  std::vector<Degree> InitialDegrees(int threads = 1) const;

  /// Calls fn once per edge containing v with the 1-element co-member list.
  template <typename Fn>
  void ForEachSClique(CliqueId v, Fn&& fn) const {
    for (VertexId u : g_->Neighbors(static_cast<VertexId>(v))) {
      const CliqueId co[1] = {u};
      fn(std::span<const CliqueId>(co, 1));
    }
  }

  const Graph& graph() const { return *g_; }

 private:
  const Graph* g_;
};

/// (r=2, s=3): r-cliques are edges, s-cliques are triangles. The co-members
/// of edge (u,v) in triangle {u,v,w} are edges (u,w) and (v,w).
class TrussSpace {
 public:
  TrussSpace(const Graph& g, const EdgeIndex& edges)
      : g_(&g), edges_(&edges) {}

  std::size_t NumRCliques() const { return edges_->NumEdges(); }

  /// Liveness of the edge-id range: empty when the index is pristine (all
  /// ids live); per-id flags once removals tombstoned ids. Engines use
  /// this to pin dead ids at kappa 0 and keep them out of peel orders,
  /// level partitions, and hierarchies.
  std::vector<std::uint8_t> LiveRFlags() const {
    if (edges_->NumLiveEdges() == edges_->NumEdges()) return {};
    std::vector<std::uint8_t> live(edges_->NumEdges());
    for (EdgeId e = 0; e < edges_->NumEdges(); ++e) {
      live[e] = edges_->IsLive(e) ? 1 : 0;
    }
    return live;
  }

  /// Single-id form of LiveRFlags for point queries (O(1)).
  bool IsLiveR(CliqueId r) const {
    return edges_->IsLive(static_cast<EdgeId>(r));
  }

  /// d_3: triangle counts per edge.
  std::vector<Degree> InitialDegrees(int threads = 1) const;

  template <typename Fn>
  void ForEachSClique(CliqueId e, Fn&& fn) const {
    // Tombstoned ids of a patched index name absent edges: no triangles.
    if (!edges_->IsLive(static_cast<EdgeId>(e))) return;
    const auto [u, v] = edges_->Endpoints(static_cast<EdgeId>(e));
    ForEachCommon(g_->Neighbors(u), g_->Neighbors(v), [&](VertexId w) {
      const CliqueId co[2] = {edges_->EdgeIdOf(u, w), edges_->EdgeIdOf(v, w)};
      fn(std::span<const CliqueId>(co, 2));
    });
  }

  const Graph& graph() const { return *g_; }
  const EdgeIndex& edges() const { return *edges_; }

 private:
  const Graph* g_;
  const EdgeIndex* edges_;
};

/// (r=3, s=4): r-cliques are triangles, s-cliques are 4-cliques. The
/// co-members of triangle {u,v,w} in 4-clique {u,v,w,x} are the triangles
/// {u,v,x}, {u,w,x}, {v,w,x}.
class Nucleus34Space {
 public:
  Nucleus34Space(const Graph& g, const TriangleIndex& tris)
      : g_(&g), tris_(&tris) {}

  std::size_t NumRCliques() const { return tris_->NumTriangles(); }

  /// Liveness of the triangle-id range; empty when the index is pristine.
  std::vector<std::uint8_t> LiveRFlags() const {
    if (tris_->NumLiveTriangles() == tris_->NumTriangles()) return {};
    std::vector<std::uint8_t> live(tris_->NumTriangles());
    for (TriangleId t = 0; t < tris_->NumTriangles(); ++t) {
      live[t] = tris_->IsLive(t) ? 1 : 0;
    }
    return live;
  }

  /// Single-id form of LiveRFlags for point queries (O(1)).
  bool IsLiveR(CliqueId r) const {
    return tris_->IsLive(static_cast<TriangleId>(r));
  }

  /// d_4: 4-clique counts per triangle.
  std::vector<Degree> InitialDegrees(int threads = 1) const;

  template <typename Fn>
  void ForEachSClique(CliqueId t, Fn&& fn) const {
    // Tombstoned ids of a patched index name absent triangles: no K4s.
    if (!tris_->IsLive(static_cast<TriangleId>(t))) return;
    const auto& tri = tris_->Vertices(static_cast<TriangleId>(t));
    ForEachCommon3(g_->Neighbors(tri[0]), g_->Neighbors(tri[1]),
                   g_->Neighbors(tri[2]), [&](VertexId x) {
                     const CliqueId co[3] = {
                         tris_->TriangleIdOf(tri[0], tri[1], x),
                         tris_->TriangleIdOf(tri[0], tri[2], x),
                         tris_->TriangleIdOf(tri[1], tri[2], x)};
                     fn(std::span<const CliqueId>(co, 3));
                   });
  }

  const Graph& graph() const { return *g_; }
  const TriangleIndex& triangles() const { return *tris_; }

 private:
  const Graph* g_;
  const TriangleIndex* tris_;
};

}  // namespace nucleus

#endif  // NUCLEUS_CLIQUE_SPACES_H_
