#include "src/clique/generic_space.h"

#include <algorithm>
#include <cassert>

#include "src/clique/intersect.h"
#include "src/common/parallel.h"

namespace nucleus {

GenericRsEnumerator::GenericRsEnumerator(const Graph& g,
                                         const KCliqueIndex& r_index, int s)
    : g_(&g), r_index_(&r_index), s_(s) {
  assert(s_ > r_index_->k());
}

void GenericRsEnumerator::ForEachExtension(
    std::span<const VertexId> base,
    const std::function<void(std::span<const VertexId>)>& cb) const {
  const int need = s_ - r_index_->k();
  // Common neighborhood of the whole base clique.
  std::vector<VertexId> cand(g_->Neighbors(base[0]).begin(),
                             g_->Neighbors(base[0]).end());
  std::vector<VertexId> tmp;
  for (std::size_t i = 1; i < base.size(); ++i) {
    tmp.clear();
    ForEachCommon(std::span<const VertexId>(cand), g_->Neighbors(base[i]),
                  [&](VertexId w) { tmp.push_back(w); });
    cand.swap(tmp);
    if (cand.empty()) return;
  }

  // Enumerate `need`-cliques inside the candidate set, ascending ids.
  std::vector<VertexId> ext;
  // Explicit stack-free recursion via lambda.
  std::function<void(const std::vector<VertexId>&)> recurse =
      [&](const std::vector<VertexId>& pool) {
        if (static_cast<int>(ext.size()) == need) {
          cb(ext);
          return;
        }
        for (VertexId v : pool) {
          ext.push_back(v);
          if (static_cast<int>(ext.size()) == need) {
            cb(ext);
          } else {
            std::vector<VertexId> next;
            ForEachCommon(std::span<const VertexId>(pool),
                          g_->Neighbors(v), [&](VertexId w) {
                            if (w > v) next.push_back(w);
                          });
            recurse(next);
          }
          ext.pop_back();
        }
      };
  if (need == 0) {
    cb(ext);
    return;
  }
  recurse(cand);
}

Degree GenericRsEnumerator::SDegree(CliqueId rc) const {
  Degree count = 0;
  ForEachExtension(r_index_->Vertices(rc),
                   [&](std::span<const VertexId>) { ++count; });
  return count;
}

void GenericRsEnumerator::ForEachSCliqueOf(
    CliqueId rc,
    const std::function<void(std::span<const CliqueId>)>& fn) const {
  const int r = r_index_->k();
  const auto base = r_index_->Vertices(rc);
  std::vector<VertexId> all(s_);       // merged s-clique vertex set
  std::vector<VertexId> subset(r);     // current r-subset
  std::vector<CliqueId> co;            // co-member ids, C(s,r)-1 of them
  std::vector<int> comb(r);            // combination indices into `all`
  ForEachExtension(base, [&](std::span<const VertexId> ext) {
    // Merge base and ext (both sorted) into the s-clique vertex list.
    std::merge(base.begin(), base.end(), ext.begin(), ext.end(),
               all.begin());
    co.clear();
    // All r-subsets of `all` except `base` itself.
    for (int i = 0; i < r; ++i) comb[i] = i;
    for (;;) {
      bool is_base = true;
      for (int i = 0; i < r; ++i) {
        subset[i] = all[comb[i]];
        if (subset[i] != base[i]) is_base = false;
      }
      if (!is_base) {
        const CliqueId id = r_index_->IdOf(subset);
        assert(id != kInvalidClique);
        co.push_back(id);
      }
      // Next combination.
      int i = r - 1;
      while (i >= 0 && comb[i] == s_ - r + i) --i;
      if (i < 0) break;
      ++comb[i];
      for (int j = i + 1; j < r; ++j) comb[j] = comb[j - 1] + 1;
    }
    fn(co);
  });
}

std::vector<Degree> GenericRsSpace::InitialDegrees(int threads) const {
  std::vector<Degree> d(NumRCliques());
  ParallelFor(d.size(), threads, [&](std::size_t rc) {
    d[rc] = enumerator_.SDegree(static_cast<CliqueId>(rc));
  });
  return d;
}

}  // namespace nucleus
