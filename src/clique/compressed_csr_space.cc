#include "src/clique/compressed_csr_space.h"

#include <algorithm>
#include <cassert>

namespace nucleus::internal {

bool EncodeCompressedArena(CsrArena* arena, int arity,
                           std::uint64_t budget_bytes,
                           CompressedArena* out) {
  const std::size_t n = arena->degrees.size();
  const std::size_t group = static_cast<std::size_t>(arity);
  const std::uint64_t fixed = CompressedArenaBytes(n, 0);
  out->byte_offsets.assign(n + 1, 0);
  out->bytes.clear();
  // Sequential encode: every byte offset depends on the previous r-clique's
  // encoded length, and the pass is a cheap linear scan next to the arena
  // enumeration that produced the input.
  std::vector<CliqueId> groups;      // r's co-member groups, sort scratch
  std::vector<std::uint32_t> order;  // lexicographic group order
  for (std::size_t r = 0; r < n; ++r) {
    const std::uint64_t begin = arena->offsets[r];
    const std::uint64_t end = arena->offsets[r + 1];
    const std::size_t d = static_cast<std::size_t>((end - begin) / group);
    if (d != 0) {
      groups.assign(arena->co_members.begin() +
                        static_cast<std::ptrdiff_t>(begin),
                    arena->co_members.begin() +
                        static_cast<std::ptrdiff_t>(end));
      // Sort within each group (ascending deltas) and the groups
      // lexicographically (non-negative head deltas). Group order is
      // observation-free for every consumer: kappa is unique and the
      // SND/AND updates are h-indices over the co-member multiset.
      for (std::size_t g = 0; g < d; ++g) {
        std::sort(groups.begin() + static_cast<std::ptrdiff_t>(g * group),
                  groups.begin() +
                      static_cast<std::ptrdiff_t>((g + 1) * group));
      }
      order.resize(d);
      for (std::size_t g = 0; g < d; ++g) {
        order[g] = static_cast<std::uint32_t>(g);
      }
      std::sort(order.begin(), order.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  return std::lexicographical_compare(
                      groups.begin() + static_cast<std::ptrdiff_t>(a * group),
                      groups.begin() +
                          static_cast<std::ptrdiff_t>((a + 1) * group),
                      groups.begin() + static_cast<std::ptrdiff_t>(b * group),
                      groups.begin() +
                          static_cast<std::ptrdiff_t>((b + 1) * group));
                });
      std::uint64_t prev_head = 0;
      bool first = true;
      for (std::uint32_t g : order) {
        const CliqueId* members = groups.data() + g * group;
        const std::uint64_t head = members[0];
        assert(first || head >= prev_head);
        AppendVarint(&out->bytes, first ? head : head - prev_head);
        first = false;
        prev_head = head;
        std::uint64_t prev = head;
        for (std::size_t k = 1; k < group; ++k) {
          assert(members[k] > prev);
          AppendVarint(&out->bytes, members[k] - prev);
          prev = members[k];
        }
      }
    }
    out->byte_offsets[r + 1] = out->bytes.size();
    if (fixed + out->bytes.size() > budget_bytes) {
      out->byte_offsets.clear();
      out->bytes.clear();
      return false;
    }
  }
  out->degrees = std::move(arena->degrees);
  return true;
}

}  // namespace nucleus::internal
