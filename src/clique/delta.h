// Derived-state deltas of a committed edge mutation. Given the net set of
// inserted/removed edges between an old and a new graph, these helpers
// enumerate exactly the s-cliques that were destroyed or created — the
// inputs the incremental commit pipeline (core/session.cc) feeds to the
// index and arena ApplyDelta/ApplyPatch methods, so a small commit costs
// O(delta-neighborhood) instead of a full re-enumeration.
//
// A triangle dies iff it contains a removed edge and is born iff it
// contains an inserted edge (vertex sets are immutable), so enumerating
// the removed edges' common neighborhoods in the OLD graph and the
// inserted edges' in the NEW graph covers both exactly; likewise for
// 4-cliques with the additional cross-pair adjacency check. Both sets are
// deduplicated (a clique can lose/gain several delta edges).
#ifndef NUCLEUS_CLIQUE_DELTA_H_
#define NUCLEUS_CLIQUE_DELTA_H_

#include <array>
#include <utility>
#include <vector>

#include "src/common/cancel.h"
#include "src/common/types.h"
#include "src/graph/graph.h"

namespace nucleus {

/// Net edge mutation set of a committed UpdateBatch: every pair appears at
/// most once and an insert-then-remove of the same pair cancels out. Pairs
/// are (u < v)-normalized.
struct EdgeDelta {
  std::vector<std::pair<VertexId, VertexId>> inserted;
  std::vector<std::pair<VertexId, VertexId>> removed;

  bool Empty() const { return inserted.empty() && removed.empty(); }
};

/// Triangles destroyed/created by the delta, as sorted vertex triples,
/// each set sorted lexicographically and deduplicated.
struct TriangleDelta {
  std::vector<std::array<VertexId, 3>> dead;
  std::vector<std::array<VertexId, 3>> born;
  /// True when enumeration was stopped mid-stream via a RunControl; the
  /// sets are then partial and must be discarded.
  bool aborted = false;
};

/// 4-cliques destroyed/created by the delta, as sorted vertex quads,
/// each set sorted lexicographically and deduplicated.
struct FourCliqueDelta {
  std::vector<std::array<VertexId, 4>> dead;
  std::vector<std::array<VertexId, 4>> born;
  /// True when enumeration was stopped mid-stream via a RunControl; the
  /// sets are then partial and must be discarded.
  bool aborted = false;
};

/// old_graph must be the graph before the delta and new_graph after it.
/// Malformed delta pairs are ignored rather than trusted: a removed pair
/// that is not an edge of old_graph (or an inserted pair absent from
/// new_graph, or a self loop / out-of-range id) contributes nothing,
/// so an adversarial batch cannot fabricate phantom dead/born cliques.
/// A stoppable `ctl` abandons the enumeration mid-stream; the result then
/// has `aborted == true` and must be discarded.
TriangleDelta ComputeTriangleDelta(const Graph& old_graph,
                                   const Graph& new_graph,
                                   const EdgeDelta& delta,
                                   RunControl ctl = {});

FourCliqueDelta ComputeFourCliqueDelta(const Graph& old_graph,
                                       const Graph& new_graph,
                                       const EdgeDelta& delta,
                                       RunControl ctl = {});

}  // namespace nucleus

#endif  // NUCLEUS_CLIQUE_DELTA_H_
