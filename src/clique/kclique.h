// Generic k-clique enumeration and indexing, the substrate of the
// arbitrary-(r,s) nucleus decomposition. The paper defines the framework
// for any r < s (Definitions 3-6) and notes that r,s > 4 is affordable only
// for small graphs; this module provides exactly that capability.
#ifndef NUCLEUS_CLIQUE_KCLIQUE_H_
#define NUCLEUS_CLIQUE_KCLIQUE_H_

#include <functional>
#include <span>
#include <vector>

#include "src/common/types.h"
#include "src/graph/graph.h"

namespace nucleus {

/// Calls fn(vertices) once per k-clique, vertices sorted ascending.
/// Enumeration is oriented by degree order (Chiba-Nishizeki style), so the
/// work is bounded by the degeneracy-restricted search tree. k >= 1.
void ForEachKClique(const Graph& g, int k,
                    const std::function<void(std::span<const VertexId>)>& fn);

/// Number of k-cliques.
Count CountKCliques(const Graph& g, int k);

/// Dense ids for the k-cliques of a graph, stored as lexicographically
/// sorted vertex tuples; lookup by binary search.
class KCliqueIndex {
 public:
  KCliqueIndex(const Graph& g, int k);

  int k() const { return k_; }

  std::size_t NumCliques() const { return k_ == 0 ? 0 : flat_.size() / k_; }

  /// Vertices of clique id, ascending.
  std::span<const VertexId> Vertices(CliqueId id) const {
    return {flat_.data() + static_cast<std::size_t>(id) * k_,
            static_cast<std::size_t>(k_)};
  }

  /// Id of the clique with exactly these vertices (must be sorted
  /// ascending), or kInvalidClique.
  CliqueId IdOf(std::span<const VertexId> sorted_vertices) const;

 private:
  int k_;
  std::vector<VertexId> flat_;  // NumCliques * k, tuples sorted lex
};

}  // namespace nucleus

#endif  // NUCLEUS_CLIQUE_KCLIQUE_H_
