#include "src/clique/four_cliques.h"

#include <algorithm>

#include "src/clique/intersect.h"
#include "src/common/parallel.h"
#include "src/graph/ordering.h"

namespace nucleus {

namespace {

// Shared enumeration core. For every 4-clique {a,b,c,d}, let v be its
// rank-minimum and w the rank-minimum of the rest: then w, x, y are all in
// out(v), and x, y are in out(w), and the x-y edge is oriented one way.
// Enumerating (v, w, common = out(v) cap out(w), then pairs of common joined
// by an oriented edge) therefore hits each 4-clique exactly once. Blocks
// partition the vertex range; fn gets rank-ordered (not id-ordered)
// vertices.
template <typename Fn>
void BlockedFourCliques(const Graph& g, const OrientedGraph& oriented,
                        int threads, Fn&& fn, RunControl ctl = {}) {
  const bool can_stop = ctl.CanStop();
  AbortFlag abort;
  ParallelBlocks(
      g.NumVertices(), threads,
      [&](int block, std::size_t begin, std::size_t end) {
        std::vector<VertexId> common;
        CheckEvery<16> poll;
        for (std::size_t vi = begin; vi < end; ++vi) {
          const VertexId v = static_cast<VertexId>(vi);
          const auto out_v = oriented.OutNeighbors(v);
          for (VertexId w : out_v) {
            // (v, w) work items can be heavy on skewed graphs, so the
            // poll sits on the inner pair loop.
            if (can_stop && poll.Due() && PollStop(ctl, abort)) return;
            common.clear();
            ForEachCommon(out_v, oriented.OutNeighbors(w),
                          [&](VertexId x) { common.push_back(x); });
            // common is sorted by vertex id. For each x in common, every
            // y in out(x) cap common closes the clique; orientation of the
            // x-y edge makes each unordered pair appear exactly once.
            const std::span<const VertexId> common_span(common.data(),
                                                        common.size());
            for (VertexId x : common) {
              ForEachCommon(common_span, oriented.OutNeighbors(x),
                            [&](VertexId y) { fn(block, v, w, x, y); });
            }
          }
        }
      });
}

}  // namespace

void ForEachFourClique(
    const Graph& g,
    const std::function<void(VertexId, VertexId, VertexId, VertexId)>& fn) {
  const auto ranks = DegreeOrderRanks(g);
  const OrientedGraph oriented(g, ranks);
  BlockedFourCliques(g, oriented, 1,
                     [&](int, VertexId a, VertexId b, VertexId c,
                         VertexId d) {
                       VertexId q[4] = {a, b, c, d};
                       std::sort(q, q + 4);
                       fn(q[0], q[1], q[2], q[3]);
                     });
}

void ForEachFourCliqueBlocks(
    const Graph& g, int threads,
    const std::function<void(int, VertexId, VertexId, VertexId, VertexId)>&
        fn,
    RunControl ctl) {
  const auto ranks = DegreeOrderRanks(g);
  const OrientedGraph oriented(g, ranks);
  BlockedFourCliques(
      g, oriented, threads,
      [&](int block, VertexId a, VertexId b, VertexId c, VertexId d) {
        VertexId q[4] = {a, b, c, d};
        std::sort(q, q + 4);
        fn(block, q[0], q[1], q[2], q[3]);
      },
      ctl);
}

Count CountFourCliques(const Graph& g, int threads, RunControl ctl) {
  const auto ranks = DegreeOrderRanks(g);
  const OrientedGraph oriented(g, ranks);
  const int t = threads <= 1 ? 1 : threads;
  std::vector<Count> partial(t, 0);
  BlockedFourCliques(
      g, oriented, t,
      [&](int block, VertexId, VertexId, VertexId, VertexId) {
        ++partial[block];
      },
      ctl);
  Count total = 0;
  for (Count c : partial) total += c;
  return total;
}

std::vector<Degree> FourCliqueCountsPerTriangle(const Graph& g,
                                                const TriangleIndex& tris,
                                                int threads, RunControl ctl) {
  const bool can_stop = ctl.CanStop();
  AbortFlag abort;
  std::vector<Degree> counts(tris.NumTriangles(), 0);
  ParallelFor(tris.NumTriangles(), threads, [&](std::size_t t) {
    if (can_stop && PollStopAmortized(ctl, abort)) return;
    if (!tris.IsLive(static_cast<TriangleId>(t))) return;  // d_4 = 0
    const auto& tri = tris.Vertices(static_cast<TriangleId>(t));
    std::size_t c = 0;
    ForEachCommon3(g.Neighbors(tri[0]), g.Neighbors(tri[1]),
                   g.Neighbors(tri[2]), [&](VertexId) { ++c; });
    counts[t] = static_cast<Degree>(c);
  });
  return counts;
}

}  // namespace nucleus
