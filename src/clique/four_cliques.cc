#include "src/clique/four_cliques.h"

#include <algorithm>

#include "src/clique/intersect.h"
#include "src/common/parallel.h"
#include "src/graph/ordering.h"

namespace nucleus {

namespace {

// Shared enumeration core. For every 4-clique {a,b,c,d}, let v be its
// rank-minimum and w the rank-minimum of the rest: then w, x, y are all in
// out(v), and x, y are in out(w), and the x-y edge is oriented one way.
// Enumerating (v, w, common = out(v) cap out(w), then pairs of common joined
// by an oriented edge) therefore hits each 4-clique exactly once.
template <typename Fn>
void EnumerateFourCliques(const Graph& g, Fn&& fn) {
  const auto ranks = DegreeOrderRanks(g);
  const OrientedGraph oriented(g, ranks);
  const std::size_t n = g.NumVertices();
  std::vector<VertexId> common;
  for (VertexId v = 0; v < n; ++v) {
    const auto out_v = oriented.OutNeighbors(v);
    for (VertexId w : out_v) {
      common.clear();
      ForEachCommon(out_v, oriented.OutNeighbors(w),
                    [&](VertexId x) { common.push_back(x); });
      // common is sorted by vertex id. For each x in common, every
      // y in out(x) cap common closes the clique; orientation of the x-y
      // edge makes each unordered pair appear exactly once.
      const std::span<const VertexId> common_span(common.data(),
                                                  common.size());
      for (VertexId x : common) {
        ForEachCommon(common_span, oriented.OutNeighbors(x),
                      [&](VertexId y) { fn(v, w, x, y); });
      }
    }
  }
}

}  // namespace

void ForEachFourClique(
    const Graph& g,
    const std::function<void(VertexId, VertexId, VertexId, VertexId)>& fn) {
  EnumerateFourCliques(g, [&](VertexId a, VertexId b, VertexId c,
                              VertexId d) {
    VertexId q[4] = {a, b, c, d};
    std::sort(q, q + 4);
    fn(q[0], q[1], q[2], q[3]);
  });
}

Count CountFourCliques(const Graph& g) {
  Count total = 0;
  EnumerateFourCliques(
      g, [&](VertexId, VertexId, VertexId, VertexId) { ++total; });
  return total;
}

std::vector<Degree> FourCliqueCountsPerTriangle(const Graph& g,
                                                const TriangleIndex& tris,
                                                int threads) {
  std::vector<Degree> counts(tris.NumTriangles(), 0);
  ParallelFor(tris.NumTriangles(), threads, [&](std::size_t t) {
    const auto& tri = tris.Vertices(static_cast<TriangleId>(t));
    std::size_t c = 0;
    ForEachCommon3(g.Neighbors(tri[0]), g.Neighbors(tri[1]),
                   g.Neighbors(tri[2]), [&](VertexId) { ++c; });
    counts[t] = static_cast<Degree>(c);
  });
  return counts;
}

}  // namespace nucleus
