// Canonical edge identifiers. Edges are the r-cliques of the (2,3)
// decomposition (k-truss), so they need dense ids, endpoint lookup, and
// id-of-pair lookup.
#ifndef NUCLEUS_CLIQUE_EDGE_INDEX_H_
#define NUCLEUS_CLIQUE_EDGE_INDEX_H_

#include <utility>
#include <vector>

#include "src/common/types.h"
#include "src/graph/graph.h"

namespace nucleus {

/// Assigns ids to the m undirected edges in lexicographic (u, v), u < v
/// order. Lookup of an id from endpoints is O(log deg(min endpoint)).
class EdgeIndex {
 public:
  explicit EdgeIndex(const Graph& g);

  /// Number of edges (== Graph::NumEdges()).
  std::size_t NumEdges() const { return endpoints_.size(); }

  /// Endpoints of edge e, with first < second.
  std::pair<VertexId, VertexId> Endpoints(EdgeId e) const {
    return endpoints_[e];
  }

  /// Id of edge {u, v}, or kInvalidEdge if absent.
  EdgeId EdgeIdOf(VertexId u, VertexId v) const;

  /// Edges incident to u whose other endpoint is > u, as (first id, count):
  /// ids are contiguous because edges are sorted by (u, v).
  std::pair<EdgeId, std::size_t> ForwardRange(VertexId u) const {
    return {static_cast<EdgeId>(forward_offsets_[u]),
            forward_offsets_[u + 1] - forward_offsets_[u]};
  }

 private:
  const Graph* graph_;
  std::vector<std::pair<VertexId, VertexId>> endpoints_;
  // forward_offsets_[u] = id of the first edge (u, *); the higher endpoints
  // of u's forward edges are the sorted suffix of Neighbors(u) above u, so
  // id lookup is a binary search there.
  std::vector<std::size_t> forward_offsets_;
};

}  // namespace nucleus

#endif  // NUCLEUS_CLIQUE_EDGE_INDEX_H_
