// Canonical edge identifiers. Edges are the r-cliques of the (2,3)
// decomposition (k-truss), so they need dense ids, endpoint lookup, and
// id-of-pair lookup.
//
// Since the incremental-commit engine landed, the index is *patchable*:
// ApplyDelta threads a committed edge insert/remove delta through the index
// in place instead of forcing a rebuild. Ids are stable across patches —
// removed edges are tombstoned (their id stays allocated, IsLive() turns
// false), inserted edges revive the tombstone of the same endpoint pair
// when one exists and otherwise get fresh ids appended past the original
// id range. NumEdges() is therefore the size of the *id space* (every id
// in [0, NumEdges()) is addressable); NumLiveEdges() counts edges actually
// present (== Graph::NumEdges() of the patched graph). A pristine index
// has the two equal and all ids live. The session compacts (rebuilds
// fresh, re-densifying ids) when DeadFraction() crosses its threshold.
#ifndef NUCLEUS_CLIQUE_EDGE_INDEX_H_
#define NUCLEUS_CLIQUE_EDGE_INDEX_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/types.h"
#include "src/graph/graph.h"

namespace nucleus {

/// Assigns ids to the m undirected edges in lexicographic (u, v), u < v
/// order. Lookup of an id from endpoints is O(log deg(min endpoint)) for
/// original edges and one hash probe for patched-in ones. The index keeps
/// no pointer into the construction graph, so it outlives graph swaps
/// (the session replaces its graph on every committed UpdateBatch).
class EdgeIndex {
 public:
  explicit EdgeIndex(const Graph& g);

  /// Size of the id space: every id in [0, NumEdges()) is addressable via
  /// Endpoints()/IsLive(). Equal to the graph's edge count until a removal
  /// is patched in; then it may exceed NumLiveEdges() by the tombstones.
  std::size_t NumEdges() const { return endpoints_.size(); }

  /// Number of live (present) edges; == Graph::NumEdges() of the current
  /// graph.
  std::size_t NumLiveEdges() const { return num_live_; }

  /// False once edge e has been removed by ApplyDelta (until the same
  /// endpoint pair is re-inserted, which revives the id).
  bool IsLive(EdgeId e) const { return dead_.empty() || dead_[e] == 0; }

  /// Tombstoned fraction of the id space (0 for a pristine index); the
  /// session's compaction trigger.
  double DeadFraction() const {
    return endpoints_.empty()
               ? 0.0
               : static_cast<double>(endpoints_.size() - num_live_) /
                     static_cast<double>(endpoints_.size());
  }

  /// Endpoints of edge e, with first < second. Valid for tombstoned ids
  /// too (the pair the id last named).
  std::pair<VertexId, VertexId> Endpoints(EdgeId e) const {
    return endpoints_[e];
  }

  /// Id of live edge {u, v}, or kInvalidEdge if absent (tombstoned counts
  /// as absent).
  EdgeId EdgeIdOf(VertexId u, VertexId v) const;

  /// Edges incident to u whose other endpoint is > u, as (first id, count):
  /// ids are contiguous because the original edges are sorted by (u, v).
  /// Covers only the pristine id range — ids patched in by ApplyDelta are
  /// not part of any forward range, and tombstoned ids are not skipped.
  std::pair<EdgeId, std::size_t> ForwardRange(VertexId u) const {
    return {static_cast<EdgeId>(forward_offsets_[u]),
            forward_offsets_[u + 1] - forward_offsets_[u]};
  }

  /// Applies a committed graph delta in place: tombstones every `removed`
  /// edge and assigns ids to every `inserted` edge — reviving the
  /// tombstone when the pair had an id before, appending a fresh id
  /// otherwise. Pairs need not be (u < v)-normalized. Removed pairs must
  /// currently be live; inserted pairs must currently be absent (the
  /// session guarantees both: the delta is the net mutation set of a
  /// committed batch). Returns the ids assigned to `inserted`, in order.
  std::vector<EdgeId> ApplyDelta(
      std::span<const std::pair<VertexId, VertexId>> removed,
      std::span<const std::pair<VertexId, VertexId>> inserted);

 private:
  static std::uint64_t Key(VertexId u, VertexId v) {
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }
  // Binary search in the pristine lexicographic range; ignores liveness.
  EdgeId BaseIdOf(VertexId u, VertexId v) const;

  std::vector<std::pair<VertexId, VertexId>> endpoints_;
  // forward_offsets_[u] = id of the first pristine edge (u, *); the base
  // id range [forward_offsets_[u], forward_offsets_[u+1]) stays sorted by
  // higher endpoint forever (patched ids only append), so id lookup is a
  // binary search over endpoints_ itself — no graph needed.
  std::vector<std::size_t> forward_offsets_;
  std::size_t base_edges_ = 0;  // endpoints_.size() at construction
  // Patch state; all empty until the first ApplyDelta.
  std::vector<std::uint8_t> dead_;               // 1 = tombstoned
  std::unordered_map<std::uint64_t, EdgeId> overlay_;  // appended pairs
  std::size_t num_live_ = 0;
};

}  // namespace nucleus

#endif  // NUCLEUS_CLIQUE_EDGE_INDEX_H_
