// GenericRsSpace: the clique space of an arbitrary (r,s) nucleus
// decomposition, r < s. r-cliques come from a KCliqueIndex; s-cliques are
// enumerated on the fly as (s-r)-clique extensions inside the common
// neighborhood of the r-clique (never materialized). Plugging this space
// into the template engines gives peeling / SND / AND / degree levels /
// hierarchies for any r < s — the full generality of the paper's framework.
#ifndef NUCLEUS_CLIQUE_GENERIC_SPACE_H_
#define NUCLEUS_CLIQUE_GENERIC_SPACE_H_

#include <functional>
#include <span>
#include <vector>

#include "src/clique/kclique.h"
#include "src/common/types.h"
#include "src/graph/graph.h"

namespace nucleus {

/// Non-template enumeration core shared by the header-template wrapper:
/// for the r-clique `verts`, finds every extension set X of size s-r such
/// that verts + X is an s-clique, and reports the C(s,r)-1 co-member ids.
/// `fn` may be called with co-member spans only valid during the call.
class GenericRsEnumerator {
 public:
  GenericRsEnumerator(const Graph& g, const KCliqueIndex& r_index, int s);

  int r() const { return r_index_->k(); }
  int s() const { return s_; }
  std::size_t NumRCliques() const { return r_index_->NumCliques(); }

  /// S-degree of one r-clique (number of s-cliques containing it).
  Degree SDegree(CliqueId rc) const;

  /// Calls fn once per s-clique containing rc, passing the co-member ids.
  void ForEachSCliqueOf(
      CliqueId rc,
      const std::function<void(std::span<const CliqueId>)>& fn) const;

 private:
  // Enumerates the (s-r)-vertex extensions of `base` (sorted) whose union
  // with base is a clique; calls cb with each extension.
  void ForEachExtension(
      std::span<const VertexId> base,
      const std::function<void(std::span<const VertexId>)>& cb) const;

  const Graph* g_;
  const KCliqueIndex* r_index_;
  int s_;
};

/// The space adapter usable with PeelDecomposition / SndGeneric /
/// AndGeneric / ComputeDegreeLevels / BuildHierarchy.
class GenericRsSpace {
 public:
  GenericRsSpace(const Graph& g, const KCliqueIndex& r_index, int s)
      : enumerator_(g, r_index, s) {}

  std::size_t NumRCliques() const { return enumerator_.NumRCliques(); }

  std::vector<Degree> InitialDegrees(int threads = 1) const;

  template <typename Fn>
  void ForEachSClique(CliqueId rc, Fn&& fn) const {
    enumerator_.ForEachSCliqueOf(rc, std::forward<Fn>(fn));
  }

  const GenericRsEnumerator& enumerator() const { return enumerator_; }

 private:
  GenericRsEnumerator enumerator_;
};

}  // namespace nucleus

#endif  // NUCLEUS_CLIQUE_GENERIC_SPACE_H_
