#include "src/clique/edge_index.h"

#include <algorithm>

namespace nucleus {

EdgeIndex::EdgeIndex(const Graph& g) : graph_(&g) {
  const std::size_t n = g.NumVertices();
  forward_offsets_.assign(n + 1, 0);
  endpoints_.reserve(g.NumEdges());
  for (VertexId u = 0; u < n; ++u) {
    forward_offsets_[u] = endpoints_.size();
    for (VertexId v : g.Neighbors(u)) {
      if (v > u) endpoints_.emplace_back(u, v);
    }
  }
  forward_offsets_[n] = endpoints_.size();
}

EdgeId EdgeIndex::EdgeIdOf(VertexId u, VertexId v) const {
  if (u == v) return kInvalidEdge;
  if (u > v) std::swap(u, v);
  if (v >= graph_->NumVertices()) return kInvalidEdge;
  const auto nb = graph_->Neighbors(u);
  // Forward neighbors of u (those > u) form the tail of nb; the edge id is
  // forward_offsets_[u] + position within that tail.
  auto tail_begin = std::upper_bound(nb.begin(), nb.end(), u);
  auto it = std::lower_bound(tail_begin, nb.end(), v);
  if (it == nb.end() || *it != v) return kInvalidEdge;
  return static_cast<EdgeId>(forward_offsets_[u] + (it - tail_begin));
}

}  // namespace nucleus
