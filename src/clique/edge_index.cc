#include "src/clique/edge_index.h"

#include <algorithm>
#include <cassert>

namespace nucleus {

EdgeIndex::EdgeIndex(const Graph& g) {
  const std::size_t n = g.NumVertices();
  forward_offsets_.assign(n + 1, 0);
  endpoints_.reserve(g.NumEdges());
  for (VertexId u = 0; u < n; ++u) {
    forward_offsets_[u] = endpoints_.size();
    for (VertexId v : g.Neighbors(u)) {
      if (v > u) endpoints_.emplace_back(u, v);
    }
  }
  forward_offsets_[n] = endpoints_.size();
  base_edges_ = endpoints_.size();
  num_live_ = endpoints_.size();
}

EdgeId EdgeIndex::BaseIdOf(VertexId u, VertexId v) const {
  // The higher endpoints of u's pristine forward edges are sorted, so the
  // id is a binary search within u's forward range over endpoints_ itself.
  const std::size_t lo = forward_offsets_[u];
  const std::size_t hi = forward_offsets_[u + 1];
  const auto begin = endpoints_.begin() + static_cast<std::ptrdiff_t>(lo);
  const auto end = endpoints_.begin() + static_cast<std::ptrdiff_t>(hi);
  const std::pair<VertexId, VertexId> key(u, v);
  const auto it = std::lower_bound(begin, end, key);
  if (it == end || *it != key) return kInvalidEdge;
  return static_cast<EdgeId>(it - endpoints_.begin());
}

EdgeId EdgeIndex::EdgeIdOf(VertexId u, VertexId v) const {
  if (u == v) return kInvalidEdge;
  if (u > v) std::swap(u, v);
  if (v >= forward_offsets_.size() - 1) return kInvalidEdge;
  const EdgeId base = BaseIdOf(u, v);
  if (base != kInvalidEdge) {
    return IsLive(base) ? base : kInvalidEdge;
  }
  if (!overlay_.empty()) {
    const auto it = overlay_.find(Key(u, v));
    if (it != overlay_.end() && IsLive(it->second)) return it->second;
  }
  return kInvalidEdge;
}

std::vector<EdgeId> EdgeIndex::ApplyDelta(
    std::span<const std::pair<VertexId, VertexId>> removed,
    std::span<const std::pair<VertexId, VertexId>> inserted) {
  if (dead_.empty()) dead_.assign(endpoints_.size(), 0);
  for (auto [u, v] : removed) {
    if (u > v) std::swap(u, v);
    EdgeId id = BaseIdOf(u, v);
    if (id == kInvalidEdge) {
      const auto it = overlay_.find(Key(u, v));
      assert(it != overlay_.end() && "removed edge has no id");
      id = it->second;
    }
    assert(dead_[id] == 0 && "removed edge already tombstoned");
    dead_[id] = 1;
    --num_live_;
  }
  std::vector<EdgeId> ids;
  ids.reserve(inserted.size());
  for (auto [u, v] : inserted) {
    if (u > v) std::swap(u, v);
    EdgeId id = BaseIdOf(u, v);
    if (id == kInvalidEdge) {
      const auto it = overlay_.find(Key(u, v));
      if (it != overlay_.end()) {
        id = it->second;  // revive a patched-in pair's tombstone
      } else {
        id = static_cast<EdgeId>(endpoints_.size());
        endpoints_.emplace_back(u, v);
        dead_.push_back(1);  // flipped live below
        overlay_.emplace(Key(u, v), id);
      }
    }
    assert(dead_[id] == 1 && "inserted edge already live");
    dead_[id] = 0;
    ++num_live_;
    ids.push_back(id);
  }
  return ids;
}

}  // namespace nucleus
