// 4-clique enumeration and per-triangle K4 counts (the s-cliques of the
// (3,4) decomposition).
#ifndef NUCLEUS_CLIQUE_FOUR_CLIQUES_H_
#define NUCLEUS_CLIQUE_FOUR_CLIQUES_H_

#include <functional>
#include <vector>

#include "src/clique/triangles.h"
#include "src/common/cancel.h"
#include "src/common/types.h"
#include "src/graph/graph.h"

namespace nucleus {

/// Calls fn(a, b, c, d) with a < b < c < d exactly once per 4-clique.
void ForEachFourClique(
    const Graph& g,
    const std::function<void(VertexId, VertexId, VertexId, VertexId)>& fn);

/// Parallel driver: partitions vertices into <= threads contiguous blocks
/// and calls fn(block, a, b, c, d) with a < b < c < d exactly once per
/// 4-clique, from the block's worker thread. fn must be safe to call
/// concurrently for distinct blocks.
/// A stoppable `ctl` makes the enumeration abandonable mid-stream; the
/// caller must check ctl.ShouldStop() afterwards and discard partials.
void ForEachFourCliqueBlocks(
    const Graph& g, int threads,
    const std::function<void(int, VertexId, VertexId, VertexId, VertexId)>&
        fn,
    RunControl ctl = {});

/// Total 4-clique count (Table 3 statistic). `threads` parallelizes over
/// vertices with per-thread accumulation. A stopped run undercounts; the
/// caller checks ctl.
Count CountFourCliques(const Graph& g, int threads = 1, RunControl ctl = {});

/// Per-triangle 4-clique counts indexed by TriangleIndex ids; this is d_4,
/// the initial tau of the (3,4) decomposition. A triangle's 4-cliques are
/// the common neighbors of its three vertices, so counts parallelize over
/// triangles. A stopped run leaves partial counts; the caller checks ctl.
std::vector<Degree> FourCliqueCountsPerTriangle(const Graph& g,
                                                const TriangleIndex& tris,
                                                int threads = 1,
                                                RunControl ctl = {});

}  // namespace nucleus

#endif  // NUCLEUS_CLIQUE_FOUR_CLIQUES_H_
