#include "src/peel/ktruss.h"

#include <algorithm>

namespace nucleus {

std::vector<Degree> TrussNumbers(const Graph& g, const EdgeIndex& edges,
                                 int count_threads, PeelStrategy strategy) {
  PeelOptions options;
  options.strategy = strategy;
  options.threads = count_threads;
  return PeelDecomposition(TrussSpace(g, edges), options).kappa;
}

std::vector<EdgeId> KTrussEdges(const std::vector<Degree>& truss_numbers,
                                Degree k) {
  std::vector<EdgeId> ids;
  for (EdgeId e = 0; e < truss_numbers.size(); ++e) {
    if (truss_numbers[e] >= k) ids.push_back(e);
  }
  return ids;
}

Degree MaxTruss(const std::vector<Degree>& truss_numbers) {
  Degree best = 0;
  for (Degree k : truss_numbers) best = std::max(best, k);
  return best;
}

}  // namespace nucleus
