#include "src/peel/ktruss.h"

#include <algorithm>

#include "src/clique/spaces.h"
#include "src/common/bucket_queue.h"

namespace nucleus {

std::vector<Degree> TrussNumbers(const Graph& g, const EdgeIndex& edges,
                                 int count_threads) {
  const TrussSpace space(g, edges);
  std::vector<Degree> ds = space.InitialDegrees(count_threads);
  BucketQueue queue(ds);
  std::vector<Degree> kappa(edges.NumEdges(), 0);
  while (!queue.Empty()) {
    const EdgeId e = queue.ExtractMin();
    const Degree k = queue.Key(e);
    kappa[e] = k;
    space.ForEachSClique(e, [&](std::span<const CliqueId> co) {
      for (CliqueId c : co) {
        if (queue.Extracted(c)) return;
      }
      for (CliqueId c : co) queue.DecrementKeyClamped(c, k);
    });
  }
  return kappa;
}

std::vector<EdgeId> KTrussEdges(const std::vector<Degree>& truss_numbers,
                                Degree k) {
  std::vector<EdgeId> ids;
  for (EdgeId e = 0; e < truss_numbers.size(); ++e) {
    if (truss_numbers[e] >= k) ids.push_back(e);
  }
  return ids;
}

Degree MaxTruss(const std::vector<Degree>& truss_numbers) {
  Degree best = 0;
  for (Degree k : truss_numbers) best = std::max(best, k);
  return best;
}

}  // namespace nucleus
