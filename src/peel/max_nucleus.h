// "Maximum nucleus of an r-clique" extraction (Section 2 of the paper:
// the maximal subgraph around a vertex/edge containing items with equal or
// larger kappa, found by a traversal). Generic over clique spaces: BFS
// from the seed over s-cliques that are fully inside the kappa(seed) level.
#ifndef NUCLEUS_PEEL_MAX_NUCLEUS_H_
#define NUCLEUS_PEEL_MAX_NUCLEUS_H_

#include <algorithm>
#include <queue>
#include <vector>

#include "src/clique/spaces.h"
#include "src/common/types.h"

namespace nucleus {

/// All r-cliques of the maximum kappa(seed)-(r,s) nucleus containing
/// `seed`: S-connected to the seed through s-cliques whose members all
/// have kappa >= kappa(seed). Sorted ascending. A tombstoned seed (dead id
/// of a patched index) names no nucleus and returns the empty set; dead
/// non-seed ids can never be reached, because the spaces skip s-cliques
/// with dead members.
template <typename Space>
std::vector<CliqueId> MaxNucleusOf(const Space& space,
                                   const std::vector<Degree>& kappa,
                                   CliqueId seed) {
  if constexpr (requires { space.IsLiveR(seed); }) {
    if (!space.IsLiveR(seed)) return {};
  }
  const Degree k = kappa[seed];
  std::vector<bool> visited(space.NumRCliques(), false);
  std::vector<CliqueId> members;
  std::queue<CliqueId> frontier;
  visited[seed] = true;
  frontier.push(seed);
  members.push_back(seed);
  while (!frontier.empty()) {
    const CliqueId r = frontier.front();
    frontier.pop();
    space.ForEachSClique(r, [&](std::span<const CliqueId> co) {
      for (CliqueId c : co) {
        if (kappa[c] < k) return;  // s-clique leaves the k-nucleus
      }
      for (CliqueId c : co) {
        if (!visited[c]) {
          visited[c] = true;
          members.push_back(c);
          frontier.push(c);
        }
      }
    });
  }
  std::sort(members.begin(), members.end());
  return members;
}

/// Vertex set of the maximum core of `v` (kappa_2(v)-core containing v).
std::vector<VertexId> MaxCoreOf(const Graph& g,
                                const std::vector<Degree>& core_numbers,
                                VertexId v);

/// Edge-id set of the maximum (triangle-connected) truss of edge `e`.
std::vector<EdgeId> MaxTrussOf(const Graph& g, const EdgeIndex& edges,
                               const std::vector<Degree>& truss_numbers,
                               EdgeId e);

/// Triangle-id set of the maximum (3,4)-nucleus of triangle `t`.
std::vector<TriangleId> MaxNucleus34Of(const Graph& g,
                                       const TriangleIndex& tris,
                                       const std::vector<Degree>& kappa,
                                       TriangleId t);

}  // namespace nucleus

#endif  // NUCLEUS_PEEL_MAX_NUCLEUS_H_
