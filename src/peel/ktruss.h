// k-truss peeling pipeline, rebuilt on the unified peel engine. The
// historical shape — parallel triangle counting followed by a strictly
// sequential peel (the paper's Figure 1b "partially parallel peeling"
// baseline) — is the default; passing PeelStrategy::kParallel (or kAuto
// with threads > 1) runs the whole peel level-synchronously on the thread
// pool instead.
#ifndef NUCLEUS_PEEL_KTRUSS_H_
#define NUCLEUS_PEEL_KTRUSS_H_

#include <vector>

#include "src/clique/edge_index.h"
#include "src/common/types.h"
#include "src/graph/graph.h"
#include "src/peel/peel_engine.h"

namespace nucleus {

/// Truss numbers kappa_3 per edge id. `count_threads` parallelizes the
/// triangle counting; the peel itself follows `strategy` (the sequential
/// bucket queue by default, matching the paper's baseline). Paper
/// convention: an edge of a k-truss is in >= k triangles (not k-2).
std::vector<Degree> TrussNumbers(
    const Graph& g, const EdgeIndex& edges, int count_threads = 1,
    PeelStrategy strategy = PeelStrategy::kSequential);

/// Edge ids of the maximal k-truss (edges with truss number >= k).
std::vector<EdgeId> KTrussEdges(const std::vector<Degree>& truss_numbers,
                                Degree k);

/// Max truss number (0 when there are no edges).
Degree MaxTruss(const std::vector<Degree>& truss_numbers);

}  // namespace nucleus

#endif  // NUCLEUS_PEEL_KTRUSS_H_
