// k-truss peeling pipeline: parallel triangle counting followed by the
// sequential peel. This is the paper's "partially parallel peeling"
// baseline (Figure 1b): only the s-degree computation parallelizes, the
// peel itself is inherently sequential.
#ifndef NUCLEUS_PEEL_KTRUSS_H_
#define NUCLEUS_PEEL_KTRUSS_H_

#include <vector>

#include "src/clique/edge_index.h"
#include "src/common/types.h"
#include "src/graph/graph.h"

namespace nucleus {

/// Truss numbers kappa_3 per edge id. Triangle counting uses
/// `count_threads`; the peel is sequential. Paper convention: an edge of a
/// k-truss is in >= k triangles (not k-2).
std::vector<Degree> TrussNumbers(const Graph& g, const EdgeIndex& edges,
                                 int count_threads = 1);

/// Edge ids of the maximal k-truss (edges with truss number >= k).
std::vector<EdgeId> KTrussEdges(const std::vector<Degree>& truss_numbers,
                                Degree k);

/// Max truss number (0 when there are no edges).
Degree MaxTruss(const std::vector<Degree>& truss_numbers);

}  // namespace nucleus

#endif  // NUCLEUS_PEEL_KTRUSS_H_
