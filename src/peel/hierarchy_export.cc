#include "src/peel/hierarchy_export.h"

#include <sstream>
#include <vector>

namespace nucleus {

void ExportHierarchyDot(const NucleusHierarchy& h, std::ostream& os,
                        const DotExportOptions& options) {
  os << "digraph " << options.name << " {\n";
  os << "  rankdir=TB;\n  node [shape=box, style=rounded];\n";
  std::vector<bool> kept(h.nodes.size(), false);
  for (std::size_t id = 0; id < h.nodes.size(); ++id) {
    if (h.nodes[id].size >= options.min_size) {
      kept[id] = true;
      os << "  n" << id << " [label=\"k=" << h.nodes[id].k
         << "\\nsize=" << h.nodes[id].size << "\"];\n";
    }
  }
  for (std::size_t id = 0; id < h.nodes.size(); ++id) {
    if (!kept[id]) continue;
    // Attach to the nearest kept ancestor so filtering keeps the tree
    // connected.
    int p = h.nodes[id].parent;
    while (p != -1 && !kept[p]) p = h.nodes[p].parent;
    if (p != -1) {
      os << "  n" << p << " -> n" << id << ";\n";
    }
  }
  os << "}\n";
}

void ExportHierarchyTsv(const NucleusHierarchy& h, std::ostream& os) {
  os << "id\tk\tparent\tsize\tnew_members\n";
  for (std::size_t id = 0; id < h.nodes.size(); ++id) {
    const auto& node = h.nodes[id];
    os << id << '\t' << node.k << '\t' << node.parent << '\t' << node.size
       << '\t' << node.new_members.size() << '\n';
  }
}

std::string HierarchyToDot(const NucleusHierarchy& h,
                           const DotExportOptions& options) {
  std::ostringstream os;
  ExportHierarchyDot(h, os, options);
  return os.str();
}

}  // namespace nucleus
