// Generic peeling entry points (Algorithm 1 of the paper): the exact,
// globally-informed baseline against which the local algorithms are
// evaluated. The implementation lives in the unified peel engine
// (peel_engine.h), which serves two interchangeable strategies — the
// sequential bucket-queue peel and the level-synchronous parallel peel —
// behind PeelOptions; this header re-exports it plus the per-space
// convenience wrappers so callers don't need the space headers.
#ifndef NUCLEUS_PEEL_GENERIC_PEEL_H_
#define NUCLEUS_PEEL_GENERIC_PEEL_H_

#include "src/clique/spaces.h"
#include "src/common/types.h"
#include "src/peel/peel_engine.h"

namespace nucleus {

// Convenience wrappers (defined in generic_peel.cc) so callers don't need
// the space headers. Each accepts the engine's PeelOptions; the default is
// the sequential on-the-fly peel.

/// k-core decomposition; kappa indexed by vertex id.
PeelResult PeelCore(const Graph& g, const PeelOptions& options = {});

/// k-truss decomposition; kappa indexed by EdgeIndex edge id. Uses the
/// paper's convention: an edge of a k-truss is in >= k triangles.
PeelResult PeelTruss(const Graph& g, const EdgeIndex& edges,
                     const PeelOptions& options = {});

/// (3,4)-nucleus decomposition; kappa indexed by TriangleIndex triangle id.
PeelResult PeelNucleus34(const Graph& g, const TriangleIndex& tris,
                         const PeelOptions& options = {});

}  // namespace nucleus

#endif  // NUCLEUS_PEEL_GENERIC_PEEL_H_
