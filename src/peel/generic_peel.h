// Generic peeling engine (Algorithm 1 of the paper): the incremental,
// globally-informed baseline against which the local algorithms are
// evaluated. Works over any (r,s) clique space.
#ifndef NUCLEUS_PEEL_GENERIC_PEEL_H_
#define NUCLEUS_PEEL_GENERIC_PEEL_H_

#include <vector>

#include "src/clique/spaces.h"
#include "src/common/bucket_queue.h"
#include "src/common/types.h"

namespace nucleus {

/// Output of a peeling run.
struct PeelResult {
  /// kappa[r] = the kappa_s index of r-clique r (Definition 4).
  std::vector<Degree> kappa;
  /// r-cliques in peel (non-decreasing kappa) order. This is also the
  /// certified best-case processing order for AND (Theorem 4).
  std::vector<CliqueId> order;
};

/// Runs Algorithm 1 over a clique space. Each extracted minimum r-clique R
/// freezes kappa(R) = current ds(R); every s-clique of R that is still fully
/// alive loses one from each surviving co-member, clamped below at kappa(R).
template <typename Space>
PeelResult PeelDecomposition(const Space& space) {
  std::vector<Degree> ds = space.InitialDegrees();
  BucketQueue queue(ds);
  PeelResult result;
  result.kappa.resize(ds.size());
  result.order.reserve(ds.size());
  while (!queue.Empty()) {
    const CliqueId r = queue.ExtractMin();
    const Degree k = queue.Key(r);
    result.kappa[r] = k;
    result.order.push_back(r);
    space.ForEachSClique(r, [&](std::span<const CliqueId> co) {
      // Skip s-cliques already destroyed by an earlier extraction.
      for (CliqueId c : co) {
        if (queue.Extracted(c)) return;
      }
      for (CliqueId c : co) {
        queue.DecrementKeyClamped(c, k);
      }
    });
  }
  return result;
}

// Convenience wrappers (defined in generic_peel.cc) so callers don't need
// the space headers.

/// k-core decomposition; kappa indexed by vertex id.
PeelResult PeelCore(const Graph& g);

/// k-truss decomposition; kappa indexed by EdgeIndex edge id. Uses the
/// paper's convention: an edge of a k-truss is in >= k triangles.
PeelResult PeelTruss(const Graph& g, const EdgeIndex& edges);

/// (3,4)-nucleus decomposition; kappa indexed by TriangleIndex triangle id.
PeelResult PeelNucleus34(const Graph& g, const TriangleIndex& tris);

}  // namespace nucleus

#endif  // NUCLEUS_PEEL_GENERIC_PEEL_H_
