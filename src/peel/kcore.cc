#include "src/peel/kcore.h"

#include <algorithm>

namespace nucleus {

std::vector<Degree> CoreNumbers(const Graph& g, const PeelOptions& options) {
  return PeelDecomposition(CoreSpace(g), options).kappa;
}

std::vector<VertexId> KCoreVertices(const Graph& g,
                                    const std::vector<Degree>& core_numbers,
                                    Degree k) {
  std::vector<VertexId> vertices;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (core_numbers[v] >= k) vertices.push_back(v);
  }
  return vertices;
}

Degree Degeneracy(const std::vector<Degree>& core_numbers) {
  Degree best = 0;
  for (Degree k : core_numbers) best = std::max(best, k);
  return best;
}

}  // namespace nucleus
