#include "src/peel/kcore.h"

#include <algorithm>

#include "src/common/bucket_queue.h"

namespace nucleus {

std::vector<Degree> CoreNumbers(const Graph& g) {
  const std::size_t n = g.NumVertices();
  std::vector<Degree> deg(n);
  for (VertexId v = 0; v < n; ++v) deg[v] = g.GetDegree(v);
  BucketQueue queue(deg);
  std::vector<Degree> core(n, 0);
  while (!queue.Empty()) {
    const VertexId v = queue.ExtractMin();
    const Degree k = queue.Key(v);
    core[v] = k;
    for (VertexId u : g.Neighbors(v)) {
      if (!queue.Extracted(u)) queue.DecrementKeyClamped(u, k);
    }
  }
  return core;
}

std::vector<VertexId> KCoreVertices(const Graph& g,
                                    const std::vector<Degree>& core_numbers,
                                    Degree k) {
  std::vector<VertexId> vertices;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (core_numbers[v] >= k) vertices.push_back(v);
  }
  return vertices;
}

Degree Degeneracy(const std::vector<Degree>& core_numbers) {
  Degree best = 0;
  for (Degree k : core_numbers) best = std::max(best, k);
  return best;
}

}  // namespace nucleus
