#include "src/peel/max_nucleus.h"

namespace nucleus {

std::vector<VertexId> MaxCoreOf(const Graph& g,
                                const std::vector<Degree>& core_numbers,
                                VertexId v) {
  return MaxNucleusOf(CoreSpace(g), core_numbers, v);
}

std::vector<EdgeId> MaxTrussOf(const Graph& g, const EdgeIndex& edges,
                               const std::vector<Degree>& truss_numbers,
                               EdgeId e) {
  return MaxNucleusOf(TrussSpace(g, edges), truss_numbers, e);
}

std::vector<TriangleId> MaxNucleus34Of(const Graph& g,
                                       const TriangleIndex& tris,
                                       const std::vector<Degree>& kappa,
                                       TriangleId t) {
  return MaxNucleusOf(Nucleus34Space(g, tris), kappa, t);
}

}  // namespace nucleus
