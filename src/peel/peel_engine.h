// Unified peel engine: the exact (Algorithm 1) peeling decomposition over
// any (r,s) clique space, behind one API with two interchangeable
// strategies:
//
//  - kSequential — the classic bucket-queue peel (Batagelj-Zaversnik):
//    extract one minimum-degree r-clique at a time, clamped-decrement the
//    co-members of its surviving s-cliques. O(n + total s-clique size),
//    strictly single-threaded.
//
//  - kParallel — level-synchronous frontier peel (ParK/PKC style): find the
//    current minimum level, claim the WHOLE frontier of r-cliques at that
//    level, process them in one parallel round (atomic clamped decrements
//    over an AtomicDegreeArray), and cascade sub-rounds until the level is
//    exhausted. Every frontier round runs on the persistent thread pool via
//    ParallelForWorker. kappa is bitwise-identical to the sequential
//    strategy (it is unique, Theorems 1-3; peel_engine_test asserts the
//    equality property across spaces, threads, and materialization).
//
// Both strategies are liveness-aware: a space whose id range contains
// tombstoned ids (patched post-commit indices expose LiveRFlags()) gets
// those ids pinned at kappa = 0 and excluded from the extraction order and
// the level partition, so hierarchies built on top never see phantom
// members.
//
// Besides kappa, the engine reports the LEVEL PARTITION of the peel —
// `order` (live r-cliques in non-decreasing kappa order) segmented into
// equal-kappa runs — which is exactly the structure hierarchy construction
// consumes (BuildHierarchy(space, PeelResult) skips the re-bucketing pass).
//
// Correctness of the parallel rounds: when several members of one s-clique
// are peeled in the same round, the s-clique must decrement each surviving
// co-member EXACTLY once (sequentially, the first extracted member destroys
// it; the clamp makes the decrements aimed at the other same-level members
// no-ops). The round rule reproduces that: an s-clique is skipped if any
// member was claimed in an earlier round (already destroyed), and among the
// members claimed in the current round only the minimum id performs the
// decrements, targeting only still-unclaimed members.
#ifndef NUCLEUS_PEEL_PEEL_ENGINE_H_
#define NUCLEUS_PEEL_PEEL_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "src/clique/compressed_csr_space.h"
#include "src/clique/csr_space.h"
#include "src/clique/spaces.h"
#include "src/common/atomic_frontier.h"
#include "src/common/bucket_queue.h"
#include "src/common/cancel.h"
#include "src/common/parallel.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace nucleus {

/// Which peel implementation runs. Both produce identical kappa and level
/// partitions; they differ only in wall-clock shape.
enum class PeelStrategy {
  kAuto,        // kParallel when threads > 1, else kSequential
  kSequential,  // bucket-queue peel, one extraction at a time
  kParallel,    // level-synchronous frontier peel on the thread pool
};

/// Execution knobs of a peel run. `materialize` lets a standalone engine
/// call self-materialize the space into a CSR arena first (same policy
/// knobs as the local engines; the session makes this decision itself and
/// passes kOff). Default reproduces the paper's sequential on-the-fly peel.
struct PeelOptions {
  PeelStrategy strategy = PeelStrategy::kAuto;
  /// Worker threads for the parallel strategy (and a materializing build).
  /// <= 1 runs every round inline.
  int threads = 1;
  /// Materialize the space before peeling (kAuto/kOn honor the budget the
  /// same way LocalOptions does; peeling defaults to the fly).
  Materialize materialize = Materialize::kOff;
  std::uint64_t materialize_budget_bytes = std::uint64_t{512} << 20;
  /// Wall-clock budget for the whole run (ms; 0 = unbounded) and optional
  /// cancellation source — same contract as Options (local/options.h).
  /// A stopped run reports PeelResult::status and its payload must be
  /// discarded.
  std::int64_t deadline_ms = 0;
  const CancelToken* cancel_token = nullptr;

  RunControl MakeControl() const {
    return MakeRunControl(cancel_token, deadline_ms);
  }
};

/// One equal-kappa segment of PeelResult::order: the r-cliques whose kappa
/// is `k` occupy order[begin, end). Levels are emitted in strictly
/// increasing k.
struct PeelLevel {
  Degree k = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Output of a peeling run.
struct PeelResult {
  /// kappa[r] = the kappa_s index of r-clique r (Definition 4). Indexed by
  /// the space's id range; tombstoned (dead) ids are pinned at 0.
  std::vector<Degree> kappa;
  /// Live r-cliques in peel (non-decreasing kappa) order. On a pristine
  /// (tombstone-free) space this covers every id and is a certified
  /// best-case processing order for AND (Theorem 4; AndOrder::kGiven
  /// requires exactly that full permutation — a patched space's order
  /// omits dead ids and cannot be fed to kGiven). For the parallel
  /// strategy each level's segment is sorted ascending by id, so the
  /// result is deterministic regardless of thread interleaving.
  std::vector<CliqueId> order;
  /// Partition of `order` into equal-kappa runs — the level structure that
  /// hierarchy construction consumes directly.
  std::vector<PeelLevel> levels;
  /// OK for a completed run; kCancelled / kDeadlineExceeded when the run
  /// was stopped mid-peel, in which case kappa/order/levels are partial
  /// garbage and the caller must discard the whole result.
  Status status;
};

namespace internal {

/// Liveness flags of a space's r-clique id range: empty means every id is
/// live. Spaces over patched (tombstoned) indices expose LiveRFlags();
/// anything else — including user-defined spaces — is fully live.
template <typename Space>
std::vector<std::uint8_t> SpaceLiveFlags(const Space& space) {
  if constexpr (requires { space.LiveRFlags(); }) {
    return space.LiveRFlags();
  } else {
    return {};
  }
}

/// Sequential strategy: the bucket-queue peel. Consumes the initial
/// degrees destructively (they seed the queue).
template <typename Space>
PeelResult PeelSequentialImpl(const Space& space, std::vector<Degree> ds,
                              const std::vector<std::uint8_t>& live,
                              RunControl ctl = {}) {
  const std::size_t n = ds.size();
  BucketQueue queue(ds);
  PeelResult result;
  result.kappa.assign(n, 0);
  result.order.reserve(n);
  const bool all_live = live.empty();
  const bool can_stop = ctl.CanStop();
  CheckEvery<256> poll;
  while (!queue.Empty()) {
    if (can_stop && poll.Due() && ctl.ShouldStop()) {
      result.status = ctl.StopStatus();
      return result;
    }
    const CliqueId r = queue.ExtractMin();
    // Tombstoned ids of a patched index sit at degree 0; their kappa is
    // pinned at 0 and they never appear in the order or level partition.
    if (!all_live && !live[r]) continue;
    const Degree k = queue.Key(r);
    result.kappa[r] = k;
    if (result.levels.empty() || result.levels.back().k != k) {
      result.levels.push_back(
          PeelLevel{k, result.order.size(), result.order.size()});
    }
    result.order.push_back(r);
    result.levels.back().end = result.order.size();
    space.ForEachSClique(r, [&](std::span<const CliqueId> co) {
      // Skip s-cliques already destroyed by an earlier extraction.
      for (CliqueId c : co) {
        if (queue.Extracted(c)) return;
      }
      for (CliqueId c : co) {
        queue.DecrementKeyClamped(c, k);
      }
    });
  }
  return result;
}

/// Parallel strategy: level-synchronous frontier peel. See the file
/// comment for the exactly-once decrement rule.
template <typename Space>
PeelResult PeelParallelImpl(const Space& space, std::vector<Degree> ds,
                            const std::vector<std::uint8_t>& live,
                            int threads, RunControl ctl = {}) {
  const std::size_t n = ds.size();
  PeelResult result;
  result.kappa.assign(n, 0);
  if (n == 0) return result;
  result.order.reserve(n);

  // Stop machinery: workers poll amortized inside rounds and raise the
  // shared flag; the round barrier turns it into a Status. All of it is
  // skipped (can_stop false) when no deadline/token was supplied.
  const bool can_stop = ctl.CanStop();
  AbortFlag abort;
  std::vector<CheckEvery<64>> polls(
      static_cast<std::size_t>(std::max(threads, 1)));

  AtomicDegreeArray deg(ds);
  // round_of[r]: the frontier round that claimed r. kAliveRound = not yet
  // claimed. Tombstoned ids are pre-claimed at round 0 (before any real
  // round) so they are never collected; real rounds start at 1. Written
  // only between parallel rounds (claim phase) — the dispatch barrier
  // makes it read-only during processing.
  constexpr std::uint32_t kAliveRound =
      std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> round_of(n, kAliveRound);
  std::size_t remaining = n;
  if (!live.empty()) {
    for (std::size_t r = 0; r < n; ++r) {
      if (!live[r]) {
        round_of[r] = 0;
        --remaining;
      }
    }
  }

  const int workers = std::max(threads, 1);
  FrontierBuffers next(workers);
  std::vector<CliqueId> frontier;
  Degree level = 0;
  std::uint32_t round = 1;

  // The still-alive ids, compacted as levels drain them, so per-level
  // scans shrink with the peel instead of re-walking [0, n). One fused
  // pass per level finds the minimum alive degree AND collects its
  // frontier; small remainders scan inline, large ones scan blocked on
  // the pool with per-worker scratch.
  std::vector<CliqueId> alive_ids;
  alive_ids.reserve(remaining);
  for (std::size_t r = 0; r < n; ++r) {
    if (round_of[r] == kAliveRound) {
      alive_ids.push_back(static_cast<CliqueId>(r));
    }
  }
  struct ScanScratch {
    std::vector<CliqueId> survivors;
    std::vector<CliqueId> candidates;
    Degree min = std::numeric_limits<Degree>::max();
  };
  std::vector<ScanScratch> scan(static_cast<std::size_t>(workers));
  std::vector<CliqueId> alive_next;
  constexpr std::size_t kParallelScanThreshold = 1u << 15;

  while (remaining > 0) {
    // Next level = minimum degree over the still-alive ids. Every alive
    // degree exceeds the previous level (its frontier cascade drained all
    // ids at or below it, and the clamp stops decrements from undershooting
    // it), so levels strictly increase.
    Degree min_deg = std::numeric_limits<Degree>::max();
    frontier.clear();
    if (threads <= 1 || alive_ids.size() < kParallelScanThreshold) {
      std::size_t w = 0;
      for (const CliqueId r : alive_ids) {
        if (round_of[r] != kAliveRound) continue;  // claimed: drop
        alive_ids[w++] = r;
        const Degree d = deg.Load(r);
        if (d < min_deg) {
          min_deg = d;
          frontier.clear();
          frontier.push_back(r);
        } else if (d == min_deg) {
          frontier.push_back(r);
        }
      }
      alive_ids.resize(w);
    } else {
      // Reset every scratch slot BEFORE dispatching: ParallelBlocks may
      // run on fewer workers than `workers` (notably worker 0 only, when
      // nested inside another parallel region), and the merge below folds
      // every slot — a stale or default-constructed min would fabricate
      // an empty frontier and spin the level loop forever.
      for (auto& s : scan) {
        s.survivors.clear();
        s.candidates.clear();
        s.min = std::numeric_limits<Degree>::max();
      }
      ParallelBlocks(alive_ids.size(), threads,
                     [&](int w, std::size_t begin, std::size_t end) {
                       auto& s = scan[static_cast<std::size_t>(w)];
                       for (std::size_t i = begin; i < end; ++i) {
                         const CliqueId r = alive_ids[i];
                         if (round_of[r] != kAliveRound) continue;
                         s.survivors.push_back(r);
                         const Degree d = deg.Load(r);
                         if (d < s.min) {
                           s.min = d;
                           s.candidates.clear();
                           s.candidates.push_back(r);
                         } else if (d == s.min) {
                           s.candidates.push_back(r);
                         }
                       }
                     });
      alive_next.clear();
      for (const auto& s : scan) {
        min_deg = std::min(min_deg, s.min);
        alive_next.insert(alive_next.end(), s.survivors.begin(),
                          s.survivors.end());
      }
      for (const auto& s : scan) {
        if (s.min == min_deg) {
          frontier.insert(frontier.end(), s.candidates.begin(),
                          s.candidates.end());
        }
      }
      std::swap(alive_ids, alive_next);
    }
    level = std::max(level, min_deg);
    const std::size_t level_begin = result.order.size();

    while (!frontier.empty()) {
      // Claim phase (between dispatches): freeze kappa and stamp the round
      // so the processing phase reads a consistent membership snapshot.
      for (CliqueId r : frontier) {
        round_of[r] = round;
        result.kappa[r] = level;
      }

      // Processing phase: destroy each frontier member's s-cliques once.
      // Cascade tails are usually a handful of items; dispatching the pool
      // for them costs more than the work, so small rounds run inline
      // (kInlineFrontier) and only bulk rounds fan out.
      const auto process = [&](int w, std::size_t idx) {
        if (can_stop) {
          if (abort.Raised()) return;
          if (polls[static_cast<std::size_t>(w)].Due() && ctl.ShouldStop()) {
            abort.Raise();
            return;
          }
        }
        const CliqueId r = frontier[idx];
        space.ForEachSClique(r, [&](std::span<const CliqueId> co) {
          // Destroyed in an earlier round, or another same-round member
          // with a smaller id owns this s-clique.
          for (CliqueId c : co) {
            const std::uint32_t rc = round_of[c];
            if (rc < round) return;
            if (rc == round && c < r) return;
          }
          for (CliqueId c : co) {
            if (round_of[c] != kAliveRound) continue;  // clamp no-op
            if (deg.DecrementClamped(c, level)) {
              next.Push(w, c);  // unique: the floor+1 -> floor CAS
            }
          }
        });
      };
      constexpr std::size_t kInlineFrontier = 512;
      if (frontier.size() <= kInlineFrontier) {
        for (std::size_t idx = 0; idx < frontier.size(); ++idx) {
          process(0, idx);
        }
      } else {
        ParallelForWorker(frontier.size(), threads, process, /*chunk=*/16);
      }

      // A raised abort flag means items were skipped and the degree state
      // is inconsistent — discard everything and report why.
      if (can_stop && (abort.Raised() || ctl.ShouldStop())) {
        result.status = ctl.StopStatus();
        return result;
      }

      remaining -= frontier.size();
      result.order.insert(result.order.end(), frontier.begin(),
                          frontier.end());
      frontier.clear();
      next.Drain(&frontier);
      ++round;
    }

    // Close the level: sort its segment so the output is deterministic
    // regardless of which worker claimed which id.
    std::sort(result.order.begin() + static_cast<std::ptrdiff_t>(level_begin),
              result.order.end());
    result.levels.push_back(
        PeelLevel{level, level_begin, result.order.size()});
  }
  return result;
}

/// Strategy dispatch over a concrete (possibly materialized) space.
template <typename Space>
PeelResult PeelDispatch(const Space& space, const PeelOptions& options,
                        std::vector<Degree> ds, RunControl ctl = {}) {
  const std::vector<std::uint8_t> live = SpaceLiveFlags(space);
  const bool parallel =
      options.strategy == PeelStrategy::kParallel ||
      (options.strategy == PeelStrategy::kAuto && options.threads > 1);
  return parallel ? PeelParallelImpl(space, std::move(ds), live,
                                     options.threads, ctl)
                  : PeelSequentialImpl(space, std::move(ds), live, ctl);
}

}  // namespace internal

/// Runs the exact peeling decomposition (Algorithm 1) over a clique space
/// with the selected strategy. Self-materializes behind
/// options.materialize when the space is not already a CSR arena (the
/// session passes kOff and materializes on its own).
template <typename Space>
PeelResult PeelDecomposition(const Space& space,
                             const PeelOptions& options) {
  const RunControl ctl = options.MakeControl();
  if constexpr (!internal::IsCsrSpace<Space>::value) {
    if (internal::WantMaterialize<Space>(options.materialize)) {
      const std::uint64_t budget = internal::EffectiveBudget(
          options.materialize, options.materialize_budget_bytes);
      std::vector<Degree> degrees;
      if (options.materialize != Materialize::kCompressed) {
        if (auto csr = CsrSpace<Space>::TryBuild(space, options.threads,
                                                 budget, &degrees, ctl)) {
          return internal::PeelDispatch(*csr, options, csr->InitialDegrees(),
                                        ctl);
        }
        if (ctl.CanStop() && ctl.ShouldStop()) {
          PeelResult stopped;
          stopped.status = ctl.StopStatus();
          return stopped;
        }
      }
      // Compressed rung: the explicit kCompressed mode, or kAuto degrading
      // after the uncompressed arena exceeded the budget.
      if (options.materialize != Materialize::kOn) {
        if (auto packed = CompressedCsrSpace<Space>::TryBuild(
                space, options.threads, budget, &degrees, ctl)) {
          return internal::PeelDispatch(*packed, options,
                                        packed->InitialDegrees(), ctl);
        }
        if (ctl.CanStop() && ctl.ShouldStop()) {
          PeelResult stopped;
          stopped.status = ctl.StopStatus();
          return stopped;
        }
      }
      // Over budget: the counting attempt already produced the degrees.
      return internal::PeelDispatch(space, options, std::move(degrees), ctl);
    }
  }
  return internal::PeelDispatch(space, options,
                                space.InitialDegrees(options.threads), ctl);
}

/// Degrees-supplied form: runs over `space` as-is (no self-
/// materialization) with `initial_degrees`, which must equal
/// space.InitialDegrees() — callers that cache d_s (the session's
/// fly-degree memo) use this to skip the counting enumeration.
template <typename Space>
PeelResult PeelDecomposition(const Space& space, const PeelOptions& options,
                             std::vector<Degree> initial_degrees) {
  return internal::PeelDispatch(space, options, std::move(initial_degrees),
                                options.MakeControl());
}

/// Back-compat form: the paper's sequential on-the-fly peel.
template <typename Space>
PeelResult PeelDecomposition(const Space& space) {
  return PeelDecomposition(space, PeelOptions{});
}

}  // namespace nucleus

#endif  // NUCLEUS_PEEL_PEEL_ENGINE_H_
