#include "src/peel/generic_peel.h"

namespace nucleus {

PeelResult PeelCore(const Graph& g) {
  return PeelDecomposition(CoreSpace(g));
}

PeelResult PeelTruss(const Graph& g, const EdgeIndex& edges) {
  return PeelDecomposition(TrussSpace(g, edges));
}

PeelResult PeelNucleus34(const Graph& g, const TriangleIndex& tris) {
  return PeelDecomposition(Nucleus34Space(g, tris));
}

}  // namespace nucleus
