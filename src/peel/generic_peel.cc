#include "src/peel/generic_peel.h"

namespace nucleus {

PeelResult PeelCore(const Graph& g, const PeelOptions& options) {
  return PeelDecomposition(CoreSpace(g), options);
}

PeelResult PeelTruss(const Graph& g, const EdgeIndex& edges,
                     const PeelOptions& options) {
  return PeelDecomposition(TrussSpace(g, edges), options);
}

PeelResult PeelNucleus34(const Graph& g, const TriangleIndex& tris,
                         const PeelOptions& options) {
  return PeelDecomposition(Nucleus34Space(g, tris), options);
}

}  // namespace nucleus
