// k-core peeling entry points, rebuilt on the unified peel engine
// (peel_engine.h): CoreNumbers runs Algorithm 1 over the (1,2) space with
// the selected strategy (sequential bucket queue by default; pass
// PeelOptions{.strategy, .threads} for the level-synchronous parallel
// peel). The independent O(n^2) reference lives in peel_test.
#ifndef NUCLEUS_PEEL_KCORE_H_
#define NUCLEUS_PEEL_KCORE_H_

#include <vector>

#include "src/common/types.h"
#include "src/graph/graph.h"
#include "src/peel/peel_engine.h"

namespace nucleus {

/// Core numbers kappa_2 for every vertex.
std::vector<Degree> CoreNumbers(const Graph& g,
                                const PeelOptions& options = {});

/// Vertices of the maximal k-core (possibly disconnected union of k-cores),
/// i.e. vertices with core number >= k.
std::vector<VertexId> KCoreVertices(const Graph& g,
                                    const std::vector<Degree>& core_numbers,
                                    Degree k);

/// Degeneracy = max core number (0 for the empty graph).
Degree Degeneracy(const std::vector<Degree>& core_numbers);

}  // namespace nucleus

#endif  // NUCLEUS_PEEL_KCORE_H_
