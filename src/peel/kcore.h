// Specialized k-core peeling (Batagelj-Zaversnik): O(n + m) direct
// implementation, used as a fast path and as a cross-check for the generic
// engine.
#ifndef NUCLEUS_PEEL_KCORE_H_
#define NUCLEUS_PEEL_KCORE_H_

#include <vector>

#include "src/common/types.h"
#include "src/graph/graph.h"

namespace nucleus {

/// Core numbers kappa_2 for every vertex.
std::vector<Degree> CoreNumbers(const Graph& g);

/// Vertices of the maximal k-core (possibly disconnected union of k-cores),
/// i.e. vertices with core number >= k.
std::vector<VertexId> KCoreVertices(const Graph& g,
                                    const std::vector<Degree>& core_numbers,
                                    Degree k);

/// Degeneracy = max core number (0 for the empty graph).
Degree Degeneracy(const std::vector<Degree>& core_numbers);

}  // namespace nucleus

#endif  // NUCLEUS_PEEL_KCORE_H_
