#include "src/peel/nucleus34.h"

#include <algorithm>

#include "src/clique/spaces.h"
#include "src/common/bucket_queue.h"

namespace nucleus {

std::vector<Degree> Nucleus34Numbers(const Graph& g,
                                     const TriangleIndex& tris,
                                     int count_threads) {
  const Nucleus34Space space(g, tris);
  std::vector<Degree> ds = space.InitialDegrees(count_threads);
  BucketQueue queue(ds);
  std::vector<Degree> kappa(tris.NumTriangles(), 0);
  while (!queue.Empty()) {
    const TriangleId t = queue.ExtractMin();
    const Degree k = queue.Key(t);
    kappa[t] = k;
    space.ForEachSClique(t, [&](std::span<const CliqueId> co) {
      for (CliqueId c : co) {
        if (queue.Extracted(c)) return;
      }
      for (CliqueId c : co) queue.DecrementKeyClamped(c, k);
    });
  }
  return kappa;
}

Degree MaxNucleus34(const std::vector<Degree>& kappa) {
  Degree best = 0;
  for (Degree k : kappa) best = std::max(best, k);
  return best;
}

}  // namespace nucleus
