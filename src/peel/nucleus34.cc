#include "src/peel/nucleus34.h"

#include <algorithm>

namespace nucleus {

std::vector<Degree> Nucleus34Numbers(const Graph& g,
                                     const TriangleIndex& tris,
                                     int count_threads,
                                     PeelStrategy strategy) {
  PeelOptions options;
  options.strategy = strategy;
  options.threads = count_threads;
  return PeelDecomposition(Nucleus34Space(g, tris), options).kappa;
}

Degree MaxNucleus34(const std::vector<Degree>& kappa) {
  Degree best = 0;
  for (Degree k : kappa) best = std::max(best, k);
  return best;
}

}  // namespace nucleus
