// Nucleus hierarchy (forest) construction. Given the kappa indices of the
// r-cliques, the k-(r,s) nuclei for all k form a laminar family under
// S-connectivity: each k-nucleus is contained in exactly one (k-1)-nucleus.
// We build that forest with a union-find sweep over decreasing kappa:
// an s-clique becomes "alive" at level k = min kappa of its members, at
// which point it S-connects its members. Every component that gains members
// or merges at level k becomes a hierarchy node with the previously built
// nodes as children.
#ifndef NUCLEUS_PEEL_HIERARCHY_H_
#define NUCLEUS_PEEL_HIERARCHY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/clique/spaces.h"
#include "src/common/cancel.h"
#include "src/common/types.h"
#include "src/peel/peel_engine.h"

namespace nucleus {

/// The nucleus forest. Node ids index `nodes`; parents have strictly
/// smaller k than children... (parents are the *sparser*, enclosing nuclei).
struct NucleusHierarchy {
  struct Node {
    /// The k of this k-(r,s) nucleus.
    Degree k = 0;
    /// Parent node id, or -1 for forest roots.
    int parent = -1;
    /// Children node ids (denser sub-nuclei).
    std::vector<int> children;
    /// r-cliques whose kappa equals k and that first appear in this node.
    std::vector<CliqueId> new_members;
    /// Total r-cliques in the nucleus (this node + descendants).
    std::size_t size = 0;
  };

  std::vector<Node> nodes;
  /// Ids of forest roots (k-minimal nuclei / isolated r-cliques).
  std::vector<int> roots;
  /// For each r-clique: the node in which it first appears (its maximum
  /// nucleus; Definition: the maximal subgraph around it of >= kappa).
  std::vector<int> node_of_clique;

  /// True when the construction was stopped via a RunControl before the
  /// sweep completed. The forest is then partial and must be discarded.
  bool aborted = false;

  /// Depth of the forest (number of nodes on the longest root-leaf path).
  std::size_t Depth() const;
};

/// Builds the hierarchy for any clique space from precomputed kappa values
/// (from peeling or converged SND/AND). `live`, when non-empty, marks
/// which r-clique ids exist (patched indices keep tombstoned ids in the
/// id space); dead ids are excluded from every node and get
/// node_of_clique == -1. Empty means all ids are live.
/// A stoppable `ctl` (on any overload, and on RepairHierarchy) abandons
/// the union-find sweep mid-stream; the returned forest then has
/// `aborted == true` and must be discarded.
template <typename Space>
NucleusHierarchy BuildHierarchy(const Space& space,
                                const std::vector<Degree>& kappa,
                                std::span<const std::uint8_t> live = {},
                                RunControl ctl = {});

/// Builds the hierarchy straight from a peel run's level partition
/// (PeelResult::levels / order), skipping the kappa re-bucketing pass.
/// The engine already excluded tombstoned ids from the partition, so no
/// separate liveness span is needed. Level segments are canonicalized to
/// ascending id order first, so the result is bitwise-identical to the
/// kappa overload whatever peel strategy produced the partition.
template <typename Space>
NucleusHierarchy BuildHierarchy(const Space& space, const PeelResult& peel,
                                RunControl ctl = {});

/// Localized hierarchy repair after a graph delta: splices the nodes of
/// `old_hierarchy` whose k exceeds `max_touched_level` (their levels are
/// untouched by the delta) onto a union-find sweep resumed over the
/// repaired levels only, producing a forest bitwise-identical to
/// BuildHierarchy(space, kappa, live) at a cost proportional to the
/// touched levels. Preconditions: `old_hierarchy` was built by any
/// BuildHierarchy path (they are all canonical) against the pre-delta
/// space; `kappa`/`live` describe the post-delta space; and
/// `max_touched_level` is >= every level the delta touched — for every id
/// whose kappa changed max(old, new), for every born id its new kappa,
/// for every dead id its old kappa, and (for spaces whose r-cliques never
/// die, i.e. the core space) the min-member level of every dead/born
/// s-clique. Ids above that level keep their kappa, liveness, and alive
/// s-cliques, which is what makes the kept prefix exact.
template <typename Space>
NucleusHierarchy RepairHierarchy(const Space& space,
                                 const NucleusHierarchy& old_hierarchy,
                                 const std::vector<Degree>& kappa,
                                 std::span<const std::uint8_t> live,
                                 Degree max_touched_level,
                                 RunControl ctl = {});

// Explicitly instantiated wrappers.
NucleusHierarchy BuildCoreHierarchy(const Graph& g,
                                    const std::vector<Degree>& kappa);
NucleusHierarchy BuildTrussHierarchy(const Graph& g, const EdgeIndex& edges,
                                     const std::vector<Degree>& kappa);
NucleusHierarchy BuildNucleus34Hierarchy(const Graph& g,
                                         const TriangleIndex& tris,
                                         const std::vector<Degree>& kappa);

}  // namespace nucleus

#endif  // NUCLEUS_PEEL_HIERARCHY_H_
