// Nucleus hierarchy (forest) construction. Given the kappa indices of the
// r-cliques, the k-(r,s) nuclei for all k form a laminar family under
// S-connectivity: each k-nucleus is contained in exactly one (k-1)-nucleus.
// We build that forest with a union-find sweep over decreasing kappa:
// an s-clique becomes "alive" at level k = min kappa of its members, at
// which point it S-connects its members. Every component that gains members
// or merges at level k becomes a hierarchy node with the previously built
// nodes as children.
#ifndef NUCLEUS_PEEL_HIERARCHY_H_
#define NUCLEUS_PEEL_HIERARCHY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/clique/spaces.h"
#include "src/common/types.h"
#include "src/peel/peel_engine.h"

namespace nucleus {

/// The nucleus forest. Node ids index `nodes`; parents have strictly
/// smaller k than children... (parents are the *sparser*, enclosing nuclei).
struct NucleusHierarchy {
  struct Node {
    /// The k of this k-(r,s) nucleus.
    Degree k = 0;
    /// Parent node id, or -1 for forest roots.
    int parent = -1;
    /// Children node ids (denser sub-nuclei).
    std::vector<int> children;
    /// r-cliques whose kappa equals k and that first appear in this node.
    std::vector<CliqueId> new_members;
    /// Total r-cliques in the nucleus (this node + descendants).
    std::size_t size = 0;
  };

  std::vector<Node> nodes;
  /// Ids of forest roots (k-minimal nuclei / isolated r-cliques).
  std::vector<int> roots;
  /// For each r-clique: the node in which it first appears (its maximum
  /// nucleus; Definition: the maximal subgraph around it of >= kappa).
  std::vector<int> node_of_clique;

  /// Depth of the forest (number of nodes on the longest root-leaf path).
  std::size_t Depth() const;
};

/// Builds the hierarchy for any clique space from precomputed kappa values
/// (from peeling or converged SND/AND). `live`, when non-empty, marks
/// which r-clique ids exist (patched indices keep tombstoned ids in the
/// id space); dead ids are excluded from every node and get
/// node_of_clique == -1. Empty means all ids are live.
template <typename Space>
NucleusHierarchy BuildHierarchy(const Space& space,
                                const std::vector<Degree>& kappa,
                                std::span<const std::uint8_t> live = {});

/// Builds the hierarchy straight from a peel run's level partition
/// (PeelResult::levels / order), skipping the kappa re-bucketing pass.
/// The engine already excluded tombstoned ids from the partition, so no
/// separate liveness span is needed.
template <typename Space>
NucleusHierarchy BuildHierarchy(const Space& space, const PeelResult& peel);

// Explicitly instantiated wrappers.
NucleusHierarchy BuildCoreHierarchy(const Graph& g,
                                    const std::vector<Degree>& kappa);
NucleusHierarchy BuildTrussHierarchy(const Graph& g, const EdgeIndex& edges,
                                     const std::vector<Degree>& kappa);
NucleusHierarchy BuildNucleus34Hierarchy(const Graph& g,
                                         const TriangleIndex& tris,
                                         const std::vector<Degree>& kappa);

}  // namespace nucleus

#endif  // NUCLEUS_PEEL_HIERARCHY_H_
