#include "src/peel/hierarchy.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/peel/hierarchy_impl.h"

namespace nucleus {

std::size_t NucleusHierarchy::Depth() const {
  if (nodes.empty()) return 0;
  std::size_t best = 0;
  // Iterative DFS with explicit depth stack.
  std::vector<std::pair<int, std::size_t>> stack;
  for (int r : roots) stack.emplace_back(r, 1);
  while (!stack.empty()) {
    auto [id, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    for (int c : nodes[id].children) stack.emplace_back(c, d + 1);
  }
  return best;
}

template NucleusHierarchy BuildHierarchy<CoreSpace>(
    const CoreSpace&, const std::vector<Degree>&,
    std::span<const std::uint8_t>, RunControl);
template NucleusHierarchy BuildHierarchy<TrussSpace>(
    const TrussSpace&, const std::vector<Degree>&,
    std::span<const std::uint8_t>, RunControl);
template NucleusHierarchy BuildHierarchy<Nucleus34Space>(
    const Nucleus34Space&, const std::vector<Degree>&,
    std::span<const std::uint8_t>, RunControl);
template NucleusHierarchy BuildHierarchy<CoreSpace>(const CoreSpace&,
                                                    const PeelResult&,
                                                    RunControl);
template NucleusHierarchy BuildHierarchy<TrussSpace>(const TrussSpace&,
                                                     const PeelResult&,
                                                     RunControl);
template NucleusHierarchy BuildHierarchy<Nucleus34Space>(
    const Nucleus34Space&, const PeelResult&, RunControl);
template NucleusHierarchy RepairHierarchy<CoreSpace>(
    const CoreSpace&, const NucleusHierarchy&, const std::vector<Degree>&,
    std::span<const std::uint8_t>, Degree, RunControl);
template NucleusHierarchy RepairHierarchy<TrussSpace>(
    const TrussSpace&, const NucleusHierarchy&, const std::vector<Degree>&,
    std::span<const std::uint8_t>, Degree, RunControl);
template NucleusHierarchy RepairHierarchy<Nucleus34Space>(
    const Nucleus34Space&, const NucleusHierarchy&,
    const std::vector<Degree>&, std::span<const std::uint8_t>, Degree,
    RunControl);

NucleusHierarchy BuildCoreHierarchy(const Graph& g,
                                    const std::vector<Degree>& kappa) {
  return BuildHierarchy(CoreSpace(g), kappa);
}

NucleusHierarchy BuildTrussHierarchy(const Graph& g, const EdgeIndex& edges,
                                     const std::vector<Degree>& kappa) {
  // A patched index keeps tombstoned ids in the id space; exclude them so
  // removed edges do not surface as phantom singleton nuclei.
  const TrussSpace space(g, edges);
  return BuildHierarchy(space, kappa, space.LiveRFlags());
}

NucleusHierarchy BuildNucleus34Hierarchy(const Graph& g,
                                         const TriangleIndex& tris,
                                         const std::vector<Degree>& kappa) {
  const Nucleus34Space space(g, tris);
  return BuildHierarchy(space, kappa, space.LiveRFlags());
}

}  // namespace nucleus
