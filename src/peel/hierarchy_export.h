// Serialization of nucleus hierarchies: Graphviz DOT for visualization and
// a line-oriented TSV for downstream analysis.
#ifndef NUCLEUS_PEEL_HIERARCHY_EXPORT_H_
#define NUCLEUS_PEEL_HIERARCHY_EXPORT_H_

#include <ostream>
#include <string>

#include "src/peel/hierarchy.h"

namespace nucleus {

/// Options controlling the DOT rendering.
struct DotExportOptions {
  /// Skip nodes whose nucleus has fewer r-cliques than this (fringe noise).
  std::size_t min_size = 1;
  /// Graph name in the DOT header.
  std::string name = "nucleus_hierarchy";
};

/// Writes a Graphviz DOT tree: one box per nucleus labeled "k=<k> n=<size>",
/// edges from parent (sparser) to child (denser).
void ExportHierarchyDot(const NucleusHierarchy& h, std::ostream& os,
                        const DotExportOptions& options = {});

/// Writes one line per node: id, k, parent, size, new_member_count.
void ExportHierarchyTsv(const NucleusHierarchy& h, std::ostream& os);

/// Convenience: DOT to a string.
std::string HierarchyToDot(const NucleusHierarchy& h,
                           const DotExportOptions& options = {});

}  // namespace nucleus

#endif  // NUCLEUS_PEEL_HIERARCHY_EXPORT_H_
