// (3,4)-nucleus peeling pipeline, rebuilt on the unified peel engine:
// parallel per-triangle K4 counting followed by the peel over triangles
// (sequential bucket queue by default; level-synchronous parallel on
// request).
#ifndef NUCLEUS_PEEL_NUCLEUS34_H_
#define NUCLEUS_PEEL_NUCLEUS34_H_

#include <vector>

#include "src/clique/triangles.h"
#include "src/common/types.h"
#include "src/graph/graph.h"
#include "src/peel/peel_engine.h"

namespace nucleus {

/// kappa_4 per triangle id. K4 counting uses `count_threads`; the peel
/// follows `strategy`.
std::vector<Degree> Nucleus34Numbers(
    const Graph& g, const TriangleIndex& tris, int count_threads = 1,
    PeelStrategy strategy = PeelStrategy::kSequential);

/// Max kappa_4 (0 when there are no triangles).
Degree MaxNucleus34(const std::vector<Degree>& kappa);

}  // namespace nucleus

#endif  // NUCLEUS_PEEL_NUCLEUS34_H_
