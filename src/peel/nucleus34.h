// (3,4)-nucleus peeling pipeline: parallel per-triangle K4 counting followed
// by the sequential peel over triangles.
#ifndef NUCLEUS_PEEL_NUCLEUS34_H_
#define NUCLEUS_PEEL_NUCLEUS34_H_

#include <vector>

#include "src/clique/triangles.h"
#include "src/common/types.h"
#include "src/graph/graph.h"

namespace nucleus {

/// kappa_4 per triangle id. K4 counting uses `count_threads`; the peel is
/// sequential.
std::vector<Degree> Nucleus34Numbers(const Graph& g,
                                     const TriangleIndex& tris,
                                     int count_threads = 1);

/// Max kappa_4 (0 when there are no triangles).
Degree MaxNucleus34(const std::vector<Degree>& kappa);

}  // namespace nucleus

#endif  // NUCLEUS_PEEL_NUCLEUS34_H_
