// BuildHierarchy / RepairHierarchy template definitions; include to
// instantiate for clique spaces beyond the canonical three (see
// core/generic_rs.cc).
//
// The construction consumes a LEVEL PARTITION — the r-cliques grouped by
// kappa, visited from the densest level down. The peel engine emits that
// structure directly (PeelResult::levels), so the PeelResult overload runs
// with zero re-bucketing; the kappa-vector overload (used when kappa comes
// from a cache or a converged local run) derives the partition in one
// counting pass first.
//
// CANONICAL FORM: every construction path feeds each level's members in
// ascending id order (the kappa overload buckets ids ascending; the
// PeelResult overload sorts each level segment first). The union-find
// sweep's output depends only on that order — DSU representative choices
// never leak into the node array — so hierarchies of the same (space,
// kappa, liveness) are bitwise-identical however they were built. That is
// what lets RepairHierarchy splice a kept node prefix onto a resumed
// sweep and still match a full rebuild exactly.
#ifndef NUCLEUS_PEEL_HIERARCHY_IMPL_H_
#define NUCLEUS_PEEL_HIERARCHY_IMPL_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/disjoint_set.h"
#include "src/peel/hierarchy.h"
#include "src/peel/peel_engine.h"

namespace nucleus {

namespace internal {

/// Mutable state of the union-find sweep between levels; RepairHierarchy
/// reconstructs this checkpoint from a kept node prefix instead of
/// replaying the levels above it.
struct HierarchySweepState {
  DisjointSet dsu;
  /// active[r]: r has been introduced (kappa >= the levels processed).
  std::vector<bool> active;
  /// node_of_root[x]: hierarchy node currently topping the component whose
  /// DSU representative is x; -1 if the component is new this level.
  std::vector<int> node_of_root;

  explicit HierarchySweepState(std::size_t n)
      : dsu(n), active(n, false), node_of_root(n, -1) {}
};

/// Runs the union-find sweep over `levels_desc` — (k, members-with-that-k)
/// in strictly DESCENDING k, live ids only, each level's members in
/// ascending id order (see the canonical-form comment above) — appending
/// nodes to h->nodes and updating the sweep state in place. Levels already
/// reflected in `state` must not reappear here.
template <typename Space>
void RunHierarchySweep(
    const Space& space, NucleusHierarchy* h, HierarchySweepState* state,
    std::span<const std::pair<Degree, std::span<const CliqueId>>>
        levels_desc,
    RunControl ctl = {}) {
  const bool can_stop = ctl.CanStop();
  CheckEvery<64> poll;
  for (const auto& [level, newly] : levels_desc) {
    if (newly.empty()) continue;
    for (CliqueId r : newly) state->active[r] = true;

    // Union step: an s-clique is alive at this level iff all of its
    // r-cliques are active (kappa >= level). Every s-clique that first
    // becomes alive now contains at least one member of `newly`, so
    // enumerating from `newly` finds all of them. Track the old top nodes
    // that get merged so they become children of the new node.
    std::unordered_map<CliqueId, std::vector<int>> pending_children;
    auto absorb = [&](CliqueId root, std::vector<int>* out) {
      if (state->node_of_root[root] != -1) {
        out->push_back(state->node_of_root[root]);
        state->node_of_root[root] = -1;
      }
      auto it = pending_children.find(root);
      if (it != pending_children.end()) {
        out->insert(out->end(), it->second.begin(), it->second.end());
        pending_children.erase(it);
      }
    };
    for (CliqueId r : newly) {
      // The per-member s-clique enumeration dominates sweep cost, so the
      // stop poll sits here. A stopped sweep leaves the forest partial;
      // the aborted flag tells callers to discard it.
      if (can_stop && poll.Due() && ctl.ShouldStop()) {
        h->aborted = true;
        return;
      }
      space.ForEachSClique(r, [&](std::span<const CliqueId> co) {
        for (CliqueId c : co) {
          if (!state->active[c]) return;  // s-clique not alive yet
        }
        for (CliqueId c : co) {
          const CliqueId ra = state->dsu.Find(r);
          const CliqueId rb = state->dsu.Find(c);
          if (ra == rb) continue;
          std::vector<int> children;
          absorb(ra, &children);
          absorb(rb, &children);
          const CliqueId merged = state->dsu.Union(ra, rb);
          if (!children.empty()) {
            auto& vec = pending_children[merged];
            vec.insert(vec.end(), children.begin(), children.end());
          }
        }
      });
    }

    // Node creation step: one node per distinct component that contains a
    // member of `newly`.
    std::unordered_map<CliqueId, int> node_for;
    for (CliqueId r : newly) {
      const CliqueId root = state->dsu.Find(r);
      auto [it, inserted] = node_for.try_emplace(root, -1);
      if (inserted) {
        const int id = static_cast<int>(h->nodes.size());
        h->nodes.emplace_back();
        NucleusHierarchy::Node& node = h->nodes.back();
        node.k = level;
        std::vector<int> children;
        absorb(root, &children);
        std::sort(children.begin(), children.end());
        children.erase(std::unique(children.begin(), children.end()),
                       children.end());
        node.children = std::move(children);
        for (int c : node.children) h->nodes[c].parent = id;
        state->node_of_root[root] = id;
        it->second = id;
      }
      h->nodes[it->second].new_members.push_back(r);
      h->node_of_clique[r] = it->second;
    }
  }
}

/// Sizes and roots, recomputed from scratch (safe on a repaired forest
/// whose kept prefix carries stale sizes). Children are created at a
/// higher level, hence earlier, so every child id < its parent id and one
/// forward pass accumulates bottom-up.
inline void FinalizeHierarchy(NucleusHierarchy* h) {
  h->roots.clear();
  for (auto& node : h->nodes) node.size = node.new_members.size();
  for (std::size_t id = 0; id < h->nodes.size(); ++id) {
    const int p = h->nodes[id].parent;
    if (p >= 0) h->nodes[p].size += h->nodes[id].size;
  }
  for (std::size_t id = 0; id < h->nodes.size(); ++id) {
    if (h->nodes[id].parent == -1) h->roots.push_back(static_cast<int>(id));
  }
}

/// Shared union-find sweep over a full level partition (fresh build).
template <typename Space>
NucleusHierarchy BuildHierarchyFromLevels(
    const Space& space, std::size_t n,
    std::span<const std::pair<Degree, std::span<const CliqueId>>>
        levels_desc,
    RunControl ctl = {}) {
  NucleusHierarchy h;
  h.node_of_clique.assign(n, -1);
  if (n == 0) return h;
  HierarchySweepState state(n);
  RunHierarchySweep(space, &h, &state, levels_desc, ctl);
  if (h.aborted) return h;  // partial; caller discards
  FinalizeHierarchy(&h);
  return h;
}

/// Bucket live ids (ascending) by kappa and list the non-empty levels
/// densest-first. `max_level` bounds which ids participate (only kappa <=
/// max_level; pass the max Degree for all). Storage for the buckets lives
/// in *by_level (kept alive by the caller while the spans are used).
inline std::vector<std::pair<Degree, std::span<const CliqueId>>>
LevelsDescFromKappa(const std::vector<Degree>& kappa,
                    std::span<const std::uint8_t> live, Degree max_level,
                    std::vector<std::vector<CliqueId>>* by_level) {
  const std::size_t n = kappa.size();
  const auto is_live = [&](CliqueId r) { return live.empty() || live[r]; };
  Degree kmax = 0;
  for (CliqueId r = 0; r < n; ++r) {
    if (is_live(r) && kappa[r] <= max_level) kmax = std::max(kmax, kappa[r]);
  }
  by_level->assign(static_cast<std::size_t>(kmax) + 1, {});
  for (CliqueId r = 0; r < n; ++r) {
    if (is_live(r) && kappa[r] <= max_level) (*by_level)[kappa[r]].push_back(r);
  }
  std::vector<std::pair<Degree, std::span<const CliqueId>>> levels_desc;
  levels_desc.reserve(by_level->size());
  for (Degree level = kmax + 1; level-- > 0;) {
    if (!(*by_level)[level].empty()) {
      levels_desc.emplace_back(
          level, std::span<const CliqueId>((*by_level)[level]));
    }
  }
  return levels_desc;
}

}  // namespace internal

template <typename Space>
NucleusHierarchy BuildHierarchy(const Space& space,
                                const std::vector<Degree>& kappa,
                                std::span<const std::uint8_t> live,
                                RunControl ctl) {
  const std::size_t n = space.NumRCliques();
  if (n == 0) return internal::BuildHierarchyFromLevels(space, n, {});

  // Derive the level partition from kappa (live ids only, largest level
  // first), then run the shared sweep.
  std::vector<std::vector<CliqueId>> by_level;
  const auto levels_desc = internal::LevelsDescFromKappa(
      kappa, live, std::numeric_limits<Degree>::max(), &by_level);
  return internal::BuildHierarchyFromLevels(space, n, levels_desc, ctl);
}

template <typename Space>
NucleusHierarchy BuildHierarchy(const Space& space, const PeelResult& peel,
                                RunControl ctl) {
  // The peel engine already partitioned the live ids into equal-kappa
  // segments of `order` (ascending kappa); sort each segment so the sweep
  // sees the canonical ascending-id member order whatever strategy peeled
  // (the sequential bucket queue emits extraction order within levels).
  std::vector<CliqueId> order = peel.order;
  for (const PeelLevel& level : peel.levels) {
    std::sort(order.begin() + static_cast<std::ptrdiff_t>(level.begin),
              order.begin() + static_cast<std::ptrdiff_t>(level.end));
  }
  std::vector<std::pair<Degree, std::span<const CliqueId>>> levels_desc;
  levels_desc.reserve(peel.levels.size());
  for (std::size_t i = peel.levels.size(); i-- > 0;) {
    const PeelLevel& level = peel.levels[i];
    levels_desc.emplace_back(
        level.k, std::span<const CliqueId>(order.data() + level.begin,
                                           level.end - level.begin));
  }
  return internal::BuildHierarchyFromLevels(space, space.NumRCliques(),
                                            levels_desc, ctl);
}

template <typename Space>
NucleusHierarchy RepairHierarchy(const Space& space,
                                 const NucleusHierarchy& old_hierarchy,
                                 const std::vector<Degree>& kappa,
                                 std::span<const std::uint8_t> live,
                                 Degree max_touched_level, RunControl ctl) {
  const std::size_t n = space.NumRCliques();
  NucleusHierarchy h;
  h.node_of_clique.assign(n, -1);
  if (n == 0) return h;

  // Keep the untouched top of the forest: nodes are created densest level
  // first, so node.k is non-increasing in node id and the nodes with
  // k > max_touched_level are exactly a prefix. Their levels' member sets,
  // kappa values, and alive s-cliques are unchanged by the delta (that is
  // what max_touched_level certifies), so a full rebuild would recreate
  // this prefix bit for bit.
  std::size_t prefix = 0;
  while (prefix < old_hierarchy.nodes.size() &&
         old_hierarchy.nodes[prefix].k > max_touched_level) {
    ++prefix;
  }
  h.nodes.assign(old_hierarchy.nodes.begin(),
                 old_hierarchy.nodes.begin() + prefix);

  // Reconstruct the sweep checkpoint the full build would reach after the
  // kept levels: per-node subtree tops (parents outside the prefix were
  // created at repaired levels and are re-linked by the resumed sweep),
  // then actives, the DSU components, and the component -> top-node map.
  internal::HierarchySweepState state(n);
  std::vector<int> top(prefix);
  for (std::size_t i = prefix; i-- > 0;) {
    const int p = h.nodes[i].parent;  // parent id > child id: already set
    if (p < 0 || static_cast<std::size_t>(p) >= prefix) {
      h.nodes[i].parent = -1;
      top[i] = static_cast<int>(i);
    } else {
      top[i] = top[p];
    }
  }
  std::vector<CliqueId> anchor(prefix, kInvalidClique);
  for (std::size_t i = 0; i < prefix; ++i) {
    const std::size_t t = static_cast<std::size_t>(top[i]);
    for (CliqueId r : h.nodes[i].new_members) {
      state.active[r] = true;
      h.node_of_clique[r] = static_cast<int>(i);
      if (anchor[t] == kInvalidClique) {
        anchor[t] = r;
      } else {
        state.dsu.Union(anchor[t], r);
      }
    }
  }
  for (std::size_t i = 0; i < prefix; ++i) {
    // Every node has >= 1 new member, so every top has an anchor.
    if (top[i] == static_cast<int>(i)) {
      state.node_of_root[state.dsu.Find(anchor[i])] = static_cast<int>(i);
    }
  }

  // Resume the sweep over the repaired levels from the new kappa.
  std::vector<std::vector<CliqueId>> by_level;
  const auto levels_desc = internal::LevelsDescFromKappa(
      kappa, live, max_touched_level, &by_level);
  internal::RunHierarchySweep(space, &h, &state, levels_desc, ctl);
  if (h.aborted) return h;  // partial; caller discards
  internal::FinalizeHierarchy(&h);
  return h;
}

}  // namespace nucleus

#endif  // NUCLEUS_PEEL_HIERARCHY_IMPL_H_
