// BuildHierarchy template definitions; include to instantiate for clique
// spaces beyond the canonical three (see core/generic_rs.cc).
//
// The construction consumes a LEVEL PARTITION — the r-cliques grouped by
// kappa, visited from the densest level down. The peel engine emits that
// structure directly (PeelResult::levels), so the PeelResult overload runs
// with zero re-bucketing; the kappa-vector overload (used when kappa comes
// from a cache or a converged local run) derives the partition in one
// counting pass first.
#ifndef NUCLEUS_PEEL_HIERARCHY_IMPL_H_
#define NUCLEUS_PEEL_HIERARCHY_IMPL_H_

#include <algorithm>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/disjoint_set.h"
#include "src/peel/hierarchy.h"
#include "src/peel/peel_engine.h"

namespace nucleus {

namespace internal {

/// Shared union-find sweep. `levels_desc` lists (k, members-with-that-k)
/// in strictly DESCENDING k; members must be live ids only, and their
/// union over all levels is the live id set. `n` is the id-space size.
template <typename Space>
NucleusHierarchy BuildHierarchyFromLevels(
    const Space& space, std::size_t n,
    std::span<const std::pair<Degree, std::span<const CliqueId>>>
        levels_desc) {
  NucleusHierarchy h;
  h.node_of_clique.assign(n, -1);
  if (n == 0) return h;

  DisjointSet dsu(n);
  std::vector<bool> active(n, false);
  // node_of_root[x]: hierarchy node currently topping the component whose
  // DSU representative is x; -1 if the component is new this level.
  std::vector<int> node_of_root(n, -1);

  for (const auto& [level, newly] : levels_desc) {
    if (newly.empty()) continue;
    for (CliqueId r : newly) active[r] = true;

    // Union step: an s-clique is alive at this level iff all of its
    // r-cliques are active (kappa >= level). Every s-clique that first
    // becomes alive now contains at least one member of `newly`, so
    // enumerating from `newly` finds all of them. Track the old top nodes
    // that get merged so they become children of the new node.
    std::unordered_map<CliqueId, std::vector<int>> pending_children;
    auto absorb = [&](CliqueId root, std::vector<int>* out) {
      if (node_of_root[root] != -1) {
        out->push_back(node_of_root[root]);
        node_of_root[root] = -1;
      }
      auto it = pending_children.find(root);
      if (it != pending_children.end()) {
        out->insert(out->end(), it->second.begin(), it->second.end());
        pending_children.erase(it);
      }
    };
    for (CliqueId r : newly) {
      space.ForEachSClique(r, [&](std::span<const CliqueId> co) {
        for (CliqueId c : co) {
          if (!active[c]) return;  // s-clique not alive yet
        }
        for (CliqueId c : co) {
          const CliqueId ra = dsu.Find(r);
          const CliqueId rb = dsu.Find(c);
          if (ra == rb) continue;
          std::vector<int> children;
          absorb(ra, &children);
          absorb(rb, &children);
          const CliqueId merged = dsu.Union(ra, rb);
          if (!children.empty()) {
            auto& vec = pending_children[merged];
            vec.insert(vec.end(), children.begin(), children.end());
          }
        }
      });
    }

    // Node creation step: one node per distinct component that contains a
    // member of `newly`.
    std::unordered_map<CliqueId, int> node_for;
    for (CliqueId r : newly) {
      const CliqueId root = dsu.Find(r);
      auto [it, inserted] = node_for.try_emplace(root, -1);
      if (inserted) {
        const int id = static_cast<int>(h.nodes.size());
        h.nodes.emplace_back();
        NucleusHierarchy::Node& node = h.nodes.back();
        node.k = level;
        std::vector<int> children;
        absorb(root, &children);
        std::sort(children.begin(), children.end());
        children.erase(std::unique(children.begin(), children.end()),
                       children.end());
        node.children = std::move(children);
        for (int c : node.children) h.nodes[c].parent = id;
        node_of_root[root] = id;
        it->second = id;
      }
      h.nodes[it->second].new_members.push_back(r);
      h.node_of_clique[r] = it->second;
    }
  }

  // Sizes: new members plus descendant sizes. Children are created at a
  // higher level, hence earlier, so every child id < its parent id and one
  // forward pass accumulates bottom-up.
  for (auto& node : h.nodes) node.size = node.new_members.size();
  for (std::size_t id = 0; id < h.nodes.size(); ++id) {
    const int p = h.nodes[id].parent;
    if (p >= 0) h.nodes[p].size += h.nodes[id].size;
  }
  for (std::size_t id = 0; id < h.nodes.size(); ++id) {
    if (h.nodes[id].parent == -1) h.roots.push_back(static_cast<int>(id));
  }
  return h;
}

}  // namespace internal

template <typename Space>
NucleusHierarchy BuildHierarchy(const Space& space,
                                const std::vector<Degree>& kappa,
                                std::span<const std::uint8_t> live) {
  const std::size_t n = space.NumRCliques();
  if (n == 0) return internal::BuildHierarchyFromLevels(space, n, {});

  // Derive the level partition from kappa (live ids only, largest level
  // first), then run the shared sweep.
  const auto is_live = [&](CliqueId r) { return live.empty() || live[r]; };
  Degree kmax = 0;
  for (CliqueId r = 0; r < n; ++r) {
    if (is_live(r)) kmax = std::max(kmax, kappa[r]);
  }
  std::vector<std::vector<CliqueId>> by_level(kmax + 1);
  for (CliqueId r = 0; r < n; ++r) {
    if (is_live(r)) by_level[kappa[r]].push_back(r);
  }
  std::vector<std::pair<Degree, std::span<const CliqueId>>> levels_desc;
  levels_desc.reserve(by_level.size());
  for (Degree level = kmax + 1; level-- > 0;) {
    if (!by_level[level].empty()) {
      levels_desc.emplace_back(level, std::span<const CliqueId>(
                                          by_level[level]));
    }
  }
  return internal::BuildHierarchyFromLevels(space, n, levels_desc);
}

template <typename Space>
NucleusHierarchy BuildHierarchy(const Space& space, const PeelResult& peel) {
  // The peel engine already partitioned the live ids into equal-kappa
  // segments of `order` (ascending); feed them to the sweep densest-first.
  std::vector<std::pair<Degree, std::span<const CliqueId>>> levels_desc;
  levels_desc.reserve(peel.levels.size());
  for (std::size_t i = peel.levels.size(); i-- > 0;) {
    const PeelLevel& level = peel.levels[i];
    levels_desc.emplace_back(
        level.k, std::span<const CliqueId>(peel.order.data() + level.begin,
                                           level.end - level.begin));
  }
  return internal::BuildHierarchyFromLevels(space, space.NumRCliques(),
                                            levels_desc);
}

}  // namespace nucleus

#endif  // NUCLEUS_PEEL_HIERARCHY_IMPL_H_
